"""The diagnostics engine: rule codes, severities, reports.

Every analyzer in :mod:`repro.analysis` emits :class:`Diagnostic`
records carrying a stable ``NYX0xx`` rule code, a severity, a source
location (a file, a line for source lints, an op index for corpus
lints) and — when the finding is mechanically repairable — a
``fixable`` flag.  A :class:`Report` aggregates diagnostics across
analyzers, renders them for humans, serializes them to JSON for CI,
and decides the process exit code (non-zero iff an *unfixed* error
remains).

Rule families::

    NYX00x  spec lint        (repro.analysis.speclint)
    NYX01x  op-sequence lint (repro.analysis.oplint)
    NYX02x  determinism self-lint (repro.analysis.selflint)
    NYX03x  corpus audit     (repro.analysis.corpus)
    NYX04x  reset-safety lint (repro.analysis.resetlint)
    NYX05x  runtime reset sanitizer (repro.analysis.sanitizer)
    NYX06x  durability lint (repro.analysis.durlint) and runtime
            checkpoint verifier (repro.analysis.statediff)
    NYX07x  hot-path lint (repro.analysis.hotlint) and sim-cost
            profiler (repro.perf.profiler)

:data:`FAMILIES` records each family's reserved code range;
:func:`validate_registry` is the self-test that keeps new rule codes
from colliding across families.

The source lints share one inline-annotation grammar, parsed here so
every pass agrees on it byte-for-byte:

* ``# nyx: allow[NYX043, reset]`` — suppress rule codes, family
  tokens (``reset``/``state``/``hot``) or family aliases
  (``NYX06x``/``NYX07x``) on the finding line (or the ``def``/
  ``class`` line for a whole scope, where a lint supports it);
* ``# nyx: state[memory]`` / ``# nyx: state[ephemeral]`` — state
  classification markers (resetlint / durlint);
* ``# nyx: hot`` — hot-path root annotation (hotlint).
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set


class Severity(Enum):
    """How bad a finding is; ERROR gates CI."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


#: code -> (one-line title, default severity).  Titles double as the
#: rule catalog in docs/analysis.md; codes are stable across releases.
RULES: Dict[str, tuple] = {
    # -- spec lint ---------------------------------------------------------
    "NYX001": ("edge type is borrowed/consumed but no node produces it",
               Severity.ERROR),
    "NYX002": ("edge type is produced but never borrowed or consumed "
               "(values of it are dead by construction)", Severity.WARNING),
    "NYX003": ("node type can never appear in a well-typed sequence "
               "(operand edge types are transitively unproducible)",
               Severity.ERROR),
    "NYX004": ("node id or name collides (duplicate id, reserved snapshot "
               "id 0xFFFF, or the reserved name 'snapshot')", Severity.ERROR),
    "NYX005": ("data fields have no mutator coverage (no byte-vector "
               "field for havoc to target)", Severity.INFO),
    # -- op-sequence / corpus dataflow lint --------------------------------
    "NYX010": ("dead output: value is produced but never borrowed or "
               "consumed", Severity.WARNING),
    "NYX011": ("unobservable tail op: effect-free producer after the "
               "last attack-surface write", Severity.WARNING),
    "NYX012": ("snapshot marker misplaced or redundant", Severity.WARNING),
    "NYX013": ("affine/type violation (bad ref, wrong edge type, "
               "double consume, bad arity)", Severity.ERROR),
    "NYX014": ("input writes nothing to the attack surface (burns an "
               "execution for no coverage)", Severity.WARNING),
    # -- determinism self-lint ---------------------------------------------
    "NYX020": ("wall-clock access outside sim/ (time.time & friends "
               "break deterministic interleaving)", Severity.ERROR),
    "NYX021": ("host randomness outside sim/ (use "
               "repro.sim.rng.DeterministicRandom)", Severity.ERROR),
    "NYX022": ("OS entropy outside sim/ (os.urandom/uuid/secrets break "
               "bit-identical reruns)", Severity.ERROR),
    "NYX023": ("iteration over an unordered set (order varies across "
               "processes; sort first)", Severity.ERROR),
    "NYX024": ("module failed to parse; determinism cannot be audited",
               Severity.ERROR),
    # -- corpus audit ------------------------------------------------------
    "NYX030": ("corpus entry is structurally corrupt (bad magic, "
               "truncated header or body)", Severity.ERROR),
    "NYX031": ("corpus entry was built for a different spec (foreign "
               "checksum; cannot audit or repair)", Severity.WARNING),
    # -- reset-safety lint --------------------------------------------------
    "NYX040": ("mutable state with no reset path: attribute is mutated "
               "after __init__ but its class has no reset/restore method "
               "and no snapshot coverage", Severity.ERROR),
    "NYX041": ("module-global mutable container in a guest-visible module "
               "(caches survive every snapshot reset)", Severity.ERROR),
    "NYX042": ("class-level mutable container (shared across instances; "
               "survives every snapshot reset)", Severity.ERROR),
    "NYX043": ("reset method skips an attribute: state mutated per-exec "
               "is never restored by the class's reset path",
               Severity.ERROR),
    "NYX044": ("snapshot restore hook keeps mutable state: attribute "
               "survives on_root_restore/on_incremental_restore",
               Severity.WARNING),
    "NYX045": ("module failed to parse; reset safety cannot be audited",
               Severity.ERROR),
    # -- runtime reset sanitizer -------------------------------------------
    "NYX050": ("reset leak: attribute path diverged from the "
               "post-root-snapshot digest after a restore", Severity.ERROR),
    "NYX051": ("reset leak: attribute path appeared or disappeared "
               "after a restore", Severity.ERROR),
    "NYX052": ("sanitizer digest truncated at the depth cap; part of the "
               "object graph is unaudited", Severity.INFO),
    # -- durability lint / checkpoint verifier ------------------------------
    "NYX060": ("mutable attribute never captured: state mutated after "
               "__init__ does not travel through snapshot_state",
               Severity.ERROR),
    "NYX061": ("snapshot/restore asymmetry: key captured but never "
               "restored, or restored but never captured", Severity.ERROR),
    "NYX062": ("capture set changed without a STATE_FORMAT bump (stale "
               "tests/golden/state_inventory.json)", Severity.ERROR),
    "NYX063": ("non-deterministically-serializable leaf: set/dict-order "
               "or object identity reaches the pickled state",
               Severity.ERROR),
    "NYX064": ("journal frame kind appended without a matching "
               "resume/salvage handler registration", Severity.ERROR),
    "NYX065": ("checkpoint fixpoint violation: snapshot -> restore -> "
               "re-snapshot changed the structural digest", Severity.ERROR),
    "NYX066": ("checkpoint divergence: a fresh process restoring the "
               "checkpoint and re-stepping did not reproduce the parent's "
               "state", Severity.ERROR),
    # -- hot-path lint / sim-cost profiler -----------------------------------
    "NYX070": ("per-iteration allocation in a hot loop (constant "
               "bytes/str/container rebuilt every pass)", Severity.ERROR),
    "NYX071": ("per-draw RNG byte building in a hot loop where the "
               "batched some_bytes API exists", Severity.ERROR),
    "NYX072": ("repeated attribute load in a hot loop body; bind a "
               "local alias before the loop", Severity.WARNING),
    "NYX073": ("redundant full-buffer copy on a hot path (whole-slice "
               "copy or pickle round-trip)", Severity.WARNING),
    "NYX074": ("try/except or generator indirection inside the "
               "innermost hot loop", Severity.WARNING),
    "NYX075": ("unresolvable call edge or misplaced '# nyx: hot' "
               "annotation", Severity.ERROR),
    "NYX076": ("hot-site budget drift vs the committed profile baseline "
               "(tests/golden/profile_baseline.json)", Severity.ERROR),
    "NYX077": ("profile/static disagreement: top-decile sim-cost site "
               "carries no '# nyx: hot' root coverage", Severity.ERROR),
}

#: family prefix -> (inclusive numeric code range, owning module).  A
#: new rule family claims its decade here; :func:`validate_registry`
#: rejects duplicate codes, codes outside their family's range, and
#: overlapping family ranges.
FAMILIES: Dict[str, tuple] = {
    "spec lint": ((0, 9), "repro.analysis.speclint"),
    "op-sequence lint": ((10, 19), "repro.analysis.oplint"),
    "determinism self-lint": ((20, 29), "repro.analysis.selflint"),
    "corpus audit": ((30, 39), "repro.analysis.corpus"),
    "reset-safety lint": ((40, 49), "repro.analysis.resetlint"),
    "runtime reset sanitizer": ((50, 59), "repro.analysis.sanitizer"),
    "durability lint": ((60, 69), "repro.analysis.durlint"),
    "hot-path lint": ((70, 79), "repro.analysis.hotlint"),
}


# ---------------------------------------------------------------------------
# shared inline-annotation grammar
# ---------------------------------------------------------------------------

#: ``# nyx: allow[...]`` with a comma list of rule codes, family tokens
#: and family aliases.  One regex for every lint: a suppression that
#: selflint parses but resetlint would not is a bug class this module
#: exists to prevent.
ALLOW_RE = re.compile(r"nyx:\s*allow\[([A-Za-z0-9,\s]+)\]")

#: marker name -> recognizer for the non-suppression annotations.
MARKER_RES: Dict[str, "re.Pattern[str]"] = {
    "hot": re.compile(r"nyx:\s*hot\b"),
    "state[memory]": re.compile(r"nyx:\s*state\[memory\]"),
    "state[ephemeral]": re.compile(r"nyx:\s*state\[ephemeral\]"),
}


def allow_tokens(lines: Sequence[str], lineno: int) -> Set[str]:
    """Tokens of a ``# nyx: allow[...]`` comment on line ``lineno``.

    ``lines`` is the module's splitlines() output; an out-of-range or
    unannotated line yields the empty set.
    """
    if not 1 <= lineno <= len(lines):
        return set()
    match = ALLOW_RE.search(lines[lineno - 1])
    if not match:
        return set()
    return {tok.strip() for tok in match.group(1).split(",") if tok.strip()}


def has_marker(lines: Sequence[str], lineno: int, marker: str) -> bool:
    """Is the ``# nyx: <marker>`` annotation present on ``lineno``?"""
    if not 1 <= lineno <= len(lines):
        return False
    return bool(MARKER_RES[marker].search(lines[lineno - 1]))


def validate_registry(rules: Optional[Dict[str, tuple]] = None,
                      families: Optional[Dict[str, tuple]] = None) -> None:
    """Self-test of the rule registry; raises ``ValueError`` on drift.

    Checks (defaulting to the live :data:`RULES`/:data:`FAMILIES`):

    * every code is well-formed (``NYX`` + 3 digits) and unique;
    * every code falls inside exactly one family's reserved range;
    * no two family ranges overlap.

    Runs as part of the analyze CLI and as a tier-1 test, so a rule
    family landed in two PRs cannot silently claim the same decade.
    """
    rules = RULES if rules is None else rules
    families = FAMILIES if families is None else families
    ranges = sorted((rng, name) for name, (rng, _mod) in families.items())
    for (lo, hi), name in ranges:
        if lo > hi:
            raise ValueError("family %r has inverted range %r"
                             % (name, (lo, hi)))
    for ((_lo1, hi1), name1), ((lo2, _hi2), name2) in zip(ranges, ranges[1:]):
        if lo2 <= hi1:
            raise ValueError("family ranges overlap: %r and %r"
                             % (name1, name2))
    seen: Dict[int, str] = {}
    for code in rules:
        if (len(code) != 6 or not code.startswith("NYX")
                or not code[3:].isdigit()):
            raise ValueError("malformed rule code %r" % code)
        number = int(code[3:])
        if number in seen:
            raise ValueError("duplicate rule code %r" % code)
        seen[number] = code
        if not any(lo <= number <= hi for (lo, hi), _name in ranges):
            raise ValueError("rule code %r belongs to no registered "
                             "family range" % code)


@dataclass
class Diagnostic:
    """One finding."""

    code: str
    message: str
    severity: Optional[Severity] = None
    #: Source location: a path for source/corpus findings, a synthetic
    #: "spec:<name>" for spec findings.
    file: Optional[str] = None
    line: Optional[int] = None
    #: Position in an op sequence, for corpus/oplint findings.
    op_index: Optional[int] = None
    #: True when apply_fixes() can repair this finding mechanically.
    fixable: bool = False
    #: Set by the fixer once the repair has been applied and verified.
    fixed: bool = False

    def __post_init__(self) -> None:
        if self.code not in RULES:
            raise ValueError("unknown rule code %r" % self.code)
        if self.severity is None:
            self.severity = RULES[self.code][1]

    def location(self) -> str:
        parts = []
        if self.file:
            parts.append("%s:%d" % (self.file, self.line) if self.line
                         else self.file)
        if self.op_index is not None:
            parts.append("op %d" % self.op_index)
        return " ".join(parts)

    def format(self) -> str:
        loc = self.location()
        tail = ""
        if self.fixed:
            tail = " [fixed]"
        elif self.fixable:
            tail = " [fixable]"
        return "%s %-7s %s%s%s" % (self.code, self.severity.value,
                                   (loc + ": ") if loc else "",
                                   self.message, tail)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "title": RULES[self.code][0],
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "op_index": self.op_index,
            "fixable": self.fixable,
            "fixed": self.fixed,
        }


@dataclass
class Report:
    """All findings of one ``repro analyze`` run."""

    tool: str = "repro-analyze"
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Free-form audit metadata (files scanned, entries repaired, ...).
    meta: Dict[str, Any] = field(default_factory=dict)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def count(self, severity: Severity, include_fixed: bool = True) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity
                   and (include_fixed or not d.fixed))

    @property
    def unfixed_errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR and not d.fixed]

    def exit_code(self) -> int:
        """Non-zero iff an error-severity finding was not repaired."""
        return 1 if self.unfixed_errors else 0

    # -- rendering ---------------------------------------------------------

    def format_text(self) -> str:
        lines = [d.format() for d in self.diagnostics]
        lines.append(
            "%d error(s), %d warning(s), %d info (%d finding(s) fixed)"
            % (self.count(Severity.ERROR), self.count(Severity.WARNING),
               self.count(Severity.INFO),
               sum(1 for d in self.diagnostics if d.fixed)))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "tool": self.tool,
            "findings": [d.as_dict() for d in self.diagnostics],
            "summary": {
                "errors": self.count(Severity.ERROR),
                "warnings": self.count(Severity.WARNING),
                "info": self.count(Severity.INFO),
                "fixed": sum(1 for d in self.diagnostics if d.fixed),
                "exit_code": self.exit_code(),
            },
            "meta": dict(sorted(self.meta.items())),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write_json(self, path: str) -> None:
        target = pathlib.Path(path)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(self.to_json() + "\n", encoding="utf-8")
        tmp.replace(target)
