"""AFLNwe: AFL with network sending, no protocol/state awareness.

AFLNwe (the ProFuzzBench baseline) treats the input as one flat byte
blob, mutates it with plain AFL havoc, and streams it to the target in
fixed-size writes over a fresh connection.  No packet structure means
no message-boundary preservation and no state feedback — which is why
it loses badly on stateful targets (Table 2: up to -53% vs AFLNet).
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.aflnet import AflNetConfig, AflNetFuzzer
from repro.fuzz.input import FuzzInput, packets_input
from repro.targets.base import TargetProfile

#: AFLNwe streams the blob in chunks of this size.
CHUNK = 512


class AflNweFuzzer(AflNetFuzzer):
    """AFLNwe = AFLNet transport minus structure minus state."""

    name = "aflnwe"

    def __init__(self, profile: TargetProfile,
                 config: Optional[AflNetConfig] = None,
                 asan: bool = False) -> None:
        config = config or AflNetConfig()
        config.state_aware = False
        config.periodic_restart = True  # keeps ProFuzzBench's cleanup
        super().__init__(profile, config, asan=asan)
        self.stats.fuzzer_name = "aflnwe"

    def run_campaign(self):
        # Seeds are flattened to blobs before fuzzing begins.
        self._flat_seeds = [self._flatten(s) for s in self.profile.seeds()]
        return super().run_campaign()

    def _run_and_process(self, input_: FuzzInput, force_keep: bool = False) -> None:
        super()._run_and_process(self._flatten(input_), force_keep)

    def _flatten(self, input_: FuzzInput) -> FuzzInput:
        """Concatenate all payloads, then re-chunk at CHUNK bytes.

        This is the structural information AFLNwe throws away: the
        re-chunked writes no longer align with protocol messages.
        """
        blob = b"".join(
            bytes(arg) for op in input_.ops for arg in op.args
            if isinstance(arg, (bytes, bytearray)))
        chunks = [blob[i:i + CHUNK] for i in range(0, len(blob), CHUNK)] or [b""]
        flat = packets_input(chunks)
        flat.origin = input_.origin
        return flat
