"""Flat bytecode serialization and affine-type validation of op
sequences.

Wire format (little endian)::

    header:  magic "NYXR" | u32 spec checksum | u32 op count
    op:      u16 node_id | operand refs (u16 each, borrows then
             consumes) | data fields (per the node's data types)

Operand refs index into the sequence of *values* produced so far (in
output order across all previous ops).  The special snapshot marker op
(node id 0xFFFF) carries no operands or data.

``validate`` enforces the affine rules: refs must exist, must have the
right edge type, and consumed values must not be used again.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

from repro.spec.nodes import Spec, SpecError

MAGIC = b"NYXR"


@dataclass
class Op:
    """One opcode instance in an input."""

    node: str
    #: Operand value indices (borrows then consumes).
    refs: Tuple[int, ...] = ()
    #: Data field values, matching the node type's data types.
    args: Tuple[Any, ...] = ()

    def is_snapshot_marker(self) -> bool:
        return self.node == "snapshot"


#: An input is simply a list of ops.
OpSequence = List[Op]

#: The fuzzer-injected snapshot marker (not part of any spec).
SNAPSHOT_OP = Op("snapshot")


def validate(spec: Spec, ops: Sequence[Op]) -> List[Tuple[int, str]]:
    """Type-check an op sequence against the spec.

    Returns the list of (value index, edge type name) produced, in
    order.  Raises :class:`SpecError` on any violation.
    """
    values: List[Tuple[int, str]] = []  # (producing op index, edge name)
    consumed: set = set()
    for op_index, op in enumerate(ops):
        if op.is_snapshot_marker():
            if op.refs or op.args:
                raise SpecError("snapshot marker carries no operands")
            continue
        node = spec.node_by_name(op.node)
        expected = list(node.borrows) + list(node.consumes)
        if len(op.refs) != len(expected):
            raise SpecError(
                "op %d (%s): %d operand refs, expected %d"
                % (op_index, op.node, len(op.refs), len(expected)))
        for ref, edge in zip(op.refs, expected):
            if not 0 <= ref < len(values):
                raise SpecError(
                    "op %d (%s): ref %d out of range" % (op_index, op.node, ref))
            if values[ref][1] != edge.name:
                raise SpecError(
                    "op %d (%s): ref %d has type %s, expected %s"
                    % (op_index, op.node, ref, values[ref][1], edge.name))
            if ref in consumed:
                raise SpecError(
                    "op %d (%s): ref %d already consumed (affine violation)"
                    % (op_index, op.node, ref))
        n_borrows = len(node.borrows)
        for ref in op.refs[n_borrows:]:
            consumed.add(ref)
        if len(op.args) != len(node.data):
            raise SpecError(
                "op %d (%s): %d data args, expected %d"
                % (op_index, op.node, len(op.args), len(node.data)))
        for _ in node.outputs:
            values.append((op_index, _.name))
    return values


def serialize(spec: Spec, ops: Sequence[Op]) -> bytes:
    """Serialize a validated op sequence to flat bytecode."""
    validate(spec, ops)
    out = bytearray()
    out += MAGIC
    out += struct.pack("<II", spec.checksum(), len(ops))
    for op in ops:
        if op.is_snapshot_marker():
            out += struct.pack("<H", Spec.SNAPSHOT_NODE_ID)
            continue
        node = spec.node_by_name(op.node)
        out += struct.pack("<H", node.node_id)
        for ref in op.refs:
            out += struct.pack("<H", ref)
        for dtype, value in zip(node.data, op.args):
            out += dtype.pack(value)
    return bytes(out)


def deserialize(spec: Spec, blob: bytes) -> OpSequence:
    """Parse flat bytecode back into an op sequence (and validate)."""
    if blob[:4] != MAGIC:
        raise SpecError("bad magic")
    checksum, count = struct.unpack_from("<II", blob, 4)
    if checksum != spec.checksum():
        raise SpecError("bytecode was built for a different spec")
    offset = 12
    ops: OpSequence = []
    for _ in range(count):
        (node_id,) = struct.unpack_from("<H", blob, offset)
        offset += 2
        if node_id == Spec.SNAPSHOT_NODE_ID:
            ops.append(Op("snapshot"))
            continue
        node = spec.node_by_id(node_id)
        refs = []
        for _ref in range(node.arity):
            (ref,) = struct.unpack_from("<H", blob, offset)
            offset += 2
            refs.append(ref)
        args = []
        for dtype in node.data:
            value, offset = dtype.unpack(blob, offset)
            args.append(value)
        ops.append(Op(node.name, tuple(refs), tuple(args)))
    validate(spec, ops)
    return ops
