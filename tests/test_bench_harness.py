"""Tests for the benchmark harness itself (config, matrix, memoization)."""

from repro.bench.profuzzbench import (BenchConfig, FUZZER_NAMES,
                                      run_fuzzer_once, run_matrix,
                                      _MATRIX_CACHE)


SMALL = BenchConfig(sim_budget=30.0, seeds=1, exec_cap_nyx=60,
                    exec_cap_afl=40, exec_cap_aflpp=30)


class TestBenchConfig:
    def test_scaled(self):
        scaled = SMALL.scaled(0.5)
        assert scaled.sim_budget == 15.0
        assert scaled.exec_cap_nyx == 100  # floor applies
        assert scaled.seeds == SMALL.seeds

    def test_hashable_for_memoization(self):
        assert hash(SMALL) == hash(BenchConfig(
            sim_budget=30.0, seeds=1, exec_cap_nyx=60, exec_cap_afl=40,
            exec_cap_aflpp=30))


class TestRunFuzzerOnce:
    def test_every_fuzzer_name_runs(self):
        for fuzzer in FUZZER_NAMES:
            result = run_fuzzer_once(fuzzer, "lightftp", 0, SMALL)
            assert result.fuzzer == fuzzer
            assert result.not_applicable or result.stats.execs > 0

    def test_na_for_desock_incompatible(self):
        result = run_fuzzer_once("afl++", "bftpd", 0, SMALL)
        assert result.not_applicable

    def test_unknown_fuzzer_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            run_fuzzer_once("libfuzzer", "lightftp", 0, SMALL)


class TestMatrix:
    def test_matrix_and_memoization(self):
        _MATRIX_CACHE.clear()
        matrix = run_matrix(targets=["lightftp"],
                            fuzzers=("aflnet", "nyx-none"), config=SMALL)
        assert len(matrix.of("aflnet", "lightftp")) == 1
        again = run_matrix(targets=["lightftp"],
                           fuzzers=("aflnet", "nyx-none"), config=SMALL)
        assert again is matrix  # memoized
        _MATRIX_CACHE.clear()

    def test_seeds_multiply_runs(self):
        _MATRIX_CACHE.clear()
        config = BenchConfig(sim_budget=20.0, seeds=2, exec_cap_nyx=40,
                             exec_cap_afl=30, exec_cap_aflpp=20)
        matrix = run_matrix(targets=["dnsmasq"], fuzzers=("nyx-none",),
                            config=config)
        assert len(matrix.of("nyx-none", "dnsmasq")) == 2
        _MATRIX_CACHE.clear()
