"""Wall-clock timing primitive tests (``repro.perf.timers``).

These primitives feed every BENCH_*.json number, so the contract is
pinned: monotone accumulation across windows, correct nesting, and a
disabled mode that never touches the host clock at all.
"""

import pytest

import repro.perf.timers as timers
from repro.perf.timers import WallTimer, bench_loop, rate_entry, wall_now


class TestWallNow:
    def test_monotonic(self):
        readings = [wall_now() for _ in range(100)]
        assert all(b >= a for a, b in zip(readings, readings[1:]))


class TestWallTimer:
    def test_accumulates_across_windows(self):
        timer = WallTimer()
        with timer:
            sum(range(1000))
        first = timer.elapsed
        assert first >= 0.0
        with timer:
            sum(range(1000))
        assert timer.elapsed >= first

    def test_nesting_outer_covers_inner(self):
        outer, inner = WallTimer(), WallTimer()
        with outer:
            with inner:
                sum(range(10000))
        assert outer.elapsed >= inner.elapsed >= 0.0

    def test_idle_between_windows_is_not_counted(self):
        timer = WallTimer()
        with timer:
            pass
        idle_mark = timer.elapsed
        sum(range(200000))  # work outside any window
        with timer:
            pass
        # Two empty windows cost far less than the idle work between
        # them would have, had it been (wrongly) attributed.
        assert timer.elapsed >= idle_mark

    def test_disabled_timer_accumulates_nothing(self):
        timer = WallTimer(enabled=False)
        with timer:
            sum(range(100000))
        assert timer.elapsed == 0.0
        assert timer._started_at is None

    def test_disabled_timer_never_reads_the_clock(self, monkeypatch):
        def explode():
            raise AssertionError("disabled timer read the clock")
        monkeypatch.setattr(timers, "wall_now", explode)
        timer = WallTimer(enabled=False)
        with timer:
            pass
        assert timer.elapsed == 0.0

    def test_enabled_by_default(self):
        assert WallTimer().enabled

    def test_exception_inside_window_still_accumulates(self):
        timer = WallTimer()
        with pytest.raises(ValueError):
            with timer:
                raise ValueError("boom")
        assert timer.elapsed >= 0.0
        assert timer._started_at is None


class TestBenchLoop:
    def test_runs_at_least_min_iterations(self):
        calls = []
        iterations, elapsed = bench_loop(calls.append, min_seconds=0.0)
        assert iterations == len(calls) == 3
        assert elapsed >= 0.0

    def test_iteration_cap_stops_free_operations(self):
        iterations, _ = bench_loop(lambda i: None, min_seconds=1e9,
                                   max_iterations=50)
        assert iterations == 50

    def test_passes_the_iteration_index(self):
        seen = []
        bench_loop(seen.append, min_seconds=0.0)
        assert seen == [0, 1, 2]


class TestRateEntry:
    def test_rate_math_and_extras(self):
        entry = rate_entry("restore", 2000, 0.5, pages_dirtied=7)
        assert entry["per_sec"] == 4000.0
        assert entry["pages_dirtied"] == 7

    def test_zero_elapsed_yields_zero_rate(self):
        assert rate_entry("x", 10, 0.0)["per_sec"] == 0.0
