"""forked-daapd: a DAAP (iTunes-style) media server over HTTP.

The slowest target in the paper's Table 3 (0.4 execs/s for AFLNet, 13
for Nyx-Net): a heavyweight startup (media library scan into the guest
filesystem) and expensive per-request work (database queries, DMAP
response encoding).  HTTP parsing + DMAP tag encoding give it a wide
parser; no bug is planted (no Table 1 row).
"""

from __future__ import annotations

import struct

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, MessageServer, TargetProfile

PORT = 3689


class ForkedDaapdServer(MessageServer):
    name = "forked-daapd"
    port = PORT
    startup_cost = 1.5  # library scan — the paper's slow-start poster child
    parse_cost = 1e-8

    def __init__(self) -> None:
        super().__init__()
        self.sessions = {}
        self.next_session = 100
        self.library = [
            {"id": 1, "title": "Song One", "artist": "A", "ms": 180000},
            {"id": 2, "title": "Song Two", "artist": "B", "ms": 200000},
            {"id": 3, "title": "Other", "artist": "A", "ms": 90000},
        ]

    def on_boot(self, api) -> None:
        for track in self.library:
            api.write_whole_file("/music/%d.mp3" % track["id"],
                                 b"ID3" + bytes(64))

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        conn.buffer += data
        while b"\r\n\r\n" in conn.buffer:
            idx = conn.buffer.find(b"\r\n\r\n")
            head, conn.buffer = conn.buffer[:idx], conn.buffer[idx + 4:]
            self._request(api, conn, head)

    def _request(self, api, conn: ConnCtx, head: bytes) -> None:
        lines = head.split(b"\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or parts[0] != b"GET":
            self._http(api, conn, 400, b"text/plain", b"bad request")
            return
        url = parts[1]
        path, _, query_string = url.partition(b"?")
        query = {}
        for pair in query_string.split(b"&"):
            key, _, value = pair.partition(b"=")
            if key:
                query[key] = value
        api.cpu(2e-5)  # database round trip
        if path == b"/server-info":
            self._dmap(api, conn, b"msrv", [
                (b"mstt", struct.pack(">I", 200)),
                (b"mpro", struct.pack(">I", 0x00020007)),
                (b"minm", b"forked-daapd-repro"),
            ])
        elif path == b"/login":
            self.next_session += 1
            self.sessions[self.next_session] = {"revision": 1}
            self._dmap(api, conn, b"mlog", [
                (b"mstt", struct.pack(">I", 200)),
                (b"mlid", struct.pack(">I", self.next_session)),
            ])
        elif path == b"/logout":
            session = self._session_of(query)
            if session is None:
                self._http(api, conn, 403, b"text/plain", b"no session")
                return
            del self.sessions[session]
            self._http(api, conn, 204, b"text/plain", b"")
        elif path == b"/update":
            if self._session_of(query) is None:
                self._http(api, conn, 403, b"text/plain", b"no session")
                return
            self._dmap(api, conn, b"mupd", [
                (b"mstt", struct.pack(">I", 200)),
                (b"musr", struct.pack(">I", 2)),
            ])
        elif path.startswith(b"/databases/1/items"):
            if self._session_of(query) is None:
                self._http(api, conn, 403, b"text/plain", b"no session")
                return
            self._items(api, conn, query)
        elif path == b"/databases":
            if self._session_of(query) is None:
                self._http(api, conn, 403, b"text/plain", b"no session")
                return
            self._dmap(api, conn, b"avdb", [
                (b"mstt", struct.pack(">I", 200)),
                (b"mrco", struct.pack(">I", 1)),
                (b"minm", b"library"),
            ])
        elif path.startswith(b"/stream/"):
            track_id = path.rsplit(b"/", 1)[-1]
            if track_id.isdigit() and any(
                    t["id"] == int(track_id) for t in self.library):
                api.cpu(1e-4)  # transcode setup
                self._http(api, conn, 200, b"audio/mpeg", b"ID3" + bytes(32))
            else:
                self._http(api, conn, 404, b"text/plain", b"no such track")
        else:
            self._http(api, conn, 404, b"text/plain", b"unknown endpoint")

    def _session_of(self, query):
        raw = query.get(b"session-id", b"")
        if not raw.isdigit():
            return None
        session = int(raw)
        return session if session in self.sessions else None

    def _items(self, api, conn: ConnCtx, query: dict) -> None:
        wanted = query.get(b"query", b"")
        tracks = self.library
        if b"artist" in wanted:
            artist = wanted.split(b"artist:", 1)[-1].strip(b"'\"()")[:16]
            tracks = [t for t in tracks
                      if t["artist"].encode() == artist]
        listing = []
        for track in tracks:
            item = _tag(b"miid", struct.pack(">I", track["id"])) \
                + _tag(b"minm", track["title"].encode()) \
                + _tag(b"asar", track["artist"].encode()) \
                + _tag(b"astm", struct.pack(">I", track["ms"]))
            listing.append(_tag(b"mlit", item))
        api.cpu(1e-5 * max(len(tracks), 1))
        self._dmap(api, conn, b"adbs", [
            (b"mstt", struct.pack(">I", 200)),
            (b"mrco", struct.pack(">I", len(tracks))),
            (b"mlcl", b"".join(listing)),
        ])

    def _dmap(self, api, conn: ConnCtx, container: bytes, tags) -> None:
        body = _tag(container, b"".join(_tag(k, v) for k, v in tags))
        self._http(api, conn, 200, b"application/x-dmap-tagged", body)

    def _http(self, api, conn: ConnCtx, code: int, ctype: bytes,
              body: bytes) -> None:
        reason = {200: b"OK", 204: b"No Content", 400: b"Bad Request",
                  403: b"Forbidden", 404: b"Not Found"}.get(code, b"Error")
        self.reply(api, conn,
                   b"HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
                   b"Content-Length: %d\r\n\r\n%s"
                   % (code, reason, ctype, len(body), body))


def _tag(code: bytes, value: bytes) -> bytes:
    return code + struct.pack(">I", len(value)) + value


DICTIONARY = [b"GET /login HTTP/1.1", b"GET /update?session-id=",
              b"GET /databases/1/items?session-id=", b"query=", b"artist:",
              b"/server-info", b"/stream/1", b"session-id=101", b"\r\n\r\n"]


def _get(url: bytes) -> bytes:
    return b"GET %s HTTP/1.1\r\nHost: daapd\r\n\r\n" % url


def make_seeds():
    spec = default_network_spec()
    seeds = []
    for packets in (
        [_get(b"/server-info"), _get(b"/login")],
        [_get(b"/login"), _get(b"/update?session-id=101"),
         _get(b"/databases?session-id=101"),
         _get(b"/databases/1/items?session-id=101")],
        [_get(b"/login"),
         _get(b"/databases/1/items?session-id=101&query='artist:A'"),
         _get(b"/stream/1"), _get(b"/logout?session-id=101")],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for packet in packets:
            builder.packet(con, packet)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="forked-daapd",
    protocol="daap",
    make_program=ForkedDaapdServer,
    surface_factory=lambda: AttackSurface.tcp_server(PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=1.5,
    libpreeny_compatible=True,
    planted_bugs=(),
    notes="Heavy startup + per-request DB cost; slowest row of Table 3.",
)
