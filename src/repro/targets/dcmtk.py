"""dcmtk (dcmqrscp): a DICOM upper-layer protocol server.

Parses DICOM Upper Layer PDUs (A-ASSOCIATE-RQ, P-DATA-TF, A-RELEASE)
with presentation-context sub-items.  The planted bug reproduces the
paper's Table 1 footnote: a heap overflow in the length handling of
user-information sub-items that is *only reliably observable under
ASAN* — without it, the overwrite lands in heap slack and only crashes
once enough corruption accumulates ("depending on the initial memory
layout").
"""

from __future__ import annotations

import struct

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashKind
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, MessageServer, TargetProfile

PORT = 11112

PDU_ASSOC_RQ = 0x01
PDU_ASSOC_AC = 0x02
PDU_ASSOC_RJ = 0x03
PDU_PDATA = 0x04
PDU_RELEASE_RQ = 0x05
PDU_RELEASE_RP = 0x06
PDU_ABORT = 0x07


class DcmtkServer(MessageServer):
    name = "dcmtk"
    port = PORT
    startup_cost = 0.06
    parse_cost = 4e-9  # DICOM parsing is heavier than line protocols

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        conn.buffer += data
        while len(conn.buffer) >= 6:
            pdu_type = conn.buffer[0]
            (length,) = struct.unpack_from(">I", conn.buffer, 2)
            if length > 1 << 20:
                self.reply(api, conn, self._abort(2))
                conn.buffer = b""
                return
            if len(conn.buffer) < 6 + length:
                return  # wait for the rest of the PDU
            body = conn.buffer[6:6 + length]
            conn.buffer = conn.buffer[6 + length:]
            self._pdu(api, conn, pdu_type, body)

    def _pdu(self, api, conn: ConnCtx, pdu_type: int, body: bytes) -> None:
        if pdu_type == PDU_ASSOC_RQ:
            self._associate(api, conn, body)
        elif pdu_type == PDU_PDATA:
            self._pdata(api, conn, body)
        elif pdu_type == PDU_RELEASE_RQ:
            conn.state = "released"
            self.reply(api, conn, struct.pack(">BBI", PDU_RELEASE_RP, 0, 4)
                       + b"\x00" * 4)
        elif pdu_type == PDU_ABORT:
            conn.state = "aborted"
        else:
            self.reply(api, conn, self._abort(1))

    def _associate(self, api, conn: ConnCtx, body: bytes) -> None:
        if len(body) < 68:
            self.reply(api, conn, self._reject(1))
            return
        version = struct.unpack_from(">H", body, 0)[0]
        if version != 1:
            self.reply(api, conn, self._reject(2))
            return
        called = body[4:20].rstrip(b" ")
        calling = body[20:36].rstrip(b" ")
        conn.vars["called"] = called
        conn.vars["calling"] = calling
        # Variable items: application context, presentation contexts,
        # user information.
        offset = 68
        contexts = 0
        while offset + 4 <= len(body):
            item_type = body[offset]
            (item_len,) = struct.unpack_from(">H", body, offset + 2)
            item = body[offset + 4:offset + 4 + item_len]
            if item_type == 0x20:      # presentation context
                contexts += 1
                if len(item) >= 4:
                    conn.vars.setdefault("pcs", []).append(item[0])
            elif item_type == 0x50:    # user information
                self._user_info(item, item_len)
            elif item_type == 0x10:    # application context
                conn.vars["app_ctx"] = item[:64]
            offset += 4 + item_len
        if contexts == 0:
            self.reply(api, conn, self._reject(3))
            return
        conn.state = "associated"
        self.reply(api, conn, struct.pack(">BBI", PDU_ASSOC_AC, 0, 8)
                   + b"\x00\x01\x00\x00\x00\x00\x00\x00")

    def _user_info(self, item: bytes, declared_len: int) -> None:
        # The planted bug: the sub-item copy loop trusts each
        # sub-item's length field against the *declared* parent length
        # instead of the actual buffer, overwriting past the
        # allocation when they disagree.
        offset = 0
        while offset + 4 <= declared_len:
            if offset + 4 > len(item):
                self.memory_corruption("dcmtk-userinfo-overflow", severity=2)
                return
            (sub_len,) = struct.unpack_from(">H", item, offset + 2)
            if offset + 4 + sub_len > len(item):
                self.memory_corruption("dcmtk-userinfo-overflow", severity=2)
                return
            offset += 4 + sub_len

    def _pdata(self, api, conn: ConnCtx, body: bytes) -> None:
        if conn.state != "associated":
            self.reply(api, conn, self._abort(3))
            return
        offset = 0
        while offset + 6 <= len(body):
            (pdv_len,) = struct.unpack_from(">I", body, offset)
            context_id = body[offset + 4] if offset + 4 < len(body) else 0
            if pdv_len < 2 or offset + 4 + pdv_len > len(body):
                break
            payload = body[offset + 6:offset + 4 + pdv_len]
            self._dimse(api, conn, context_id, payload)
            offset += 4 + pdv_len

    def _dimse(self, api, conn: ConnCtx, context_id: int, payload: bytes) -> None:
        # Minimal C-ECHO / C-STORE dispatch on the command field.
        if len(payload) >= 2:
            command = struct.unpack_from("<H", payload, 0)[0]
        else:
            command = 0
        if command == 0x0030:        # C-ECHO-RQ
            conn.vars["echoes"] = conn.vars.get("echoes", 0) + 1
            response = struct.pack("<H", 0x8030)
            self.reply(api, conn, struct.pack(">BBI", PDU_PDATA, 0,
                                              len(response) + 6)
                       + struct.pack(">IBB", len(response) + 2, context_id, 3)
                       + response)
        elif command == 0x0001:      # C-STORE-RQ
            api.write_whole_file("/var/dcmtk/recv_%d.dcm"
                                 % conn.vars.get("stores", 0), payload[:256])
            conn.vars["stores"] = conn.vars.get("stores", 0) + 1
            api.cpu(5e-6)

    def _reject(self, reason: int) -> bytes:
        return struct.pack(">BBI", PDU_ASSOC_RJ, 0, 4) + bytes([0, 1, 1, reason])

    def _abort(self, reason: int) -> bytes:
        return struct.pack(">BBI", PDU_ABORT, 0, 4) + bytes([0, 0, 0, reason])


def _assoc_rq(called: bytes = b"ANY-SCP", calling: bytes = b"ECHOSCU",
              user_info: bytes = b"") -> bytes:
    fixed = struct.pack(">HH", 1, 0) + called.ljust(16) + calling.ljust(16) \
        + bytes(32)
    app_ctx = b"\x10\x00" + struct.pack(">H", 21) + b"1.2.840.10008.3.1.1.1"
    pc = b"\x20\x00" + struct.pack(">H", 8) + b"\x01\x00\x00\x00abcd"
    ui = b"\x50\x00" + struct.pack(">H", len(user_info)) + user_info
    body = fixed + app_ctx + pc + ui
    return struct.pack(">BBI", PDU_ASSOC_RQ, 0, len(body)) + body


def _pdata(payload: bytes, context: int = 1) -> bytes:
    pdv = struct.pack(">IBB", len(payload) + 2, context, 3) + payload
    return struct.pack(">BBI", PDU_PDATA, 0, len(pdv)) + pdv


def _release() -> bytes:
    return struct.pack(">BBI", PDU_RELEASE_RQ, 0, 4) + bytes(4)


DICTIONARY = [b"\x01\x00", b"\x04\x00", b"\x05\x00", b"1.2.840.10008",
              b"ANY-SCP", b"ECHOSCU", b"\x50\x00", b"\x20\x00",
              struct.pack("<H", 0x0030), struct.pack("<H", 0x0001)]


def make_seeds():
    spec = default_network_spec()
    seeds = []
    echo = struct.pack("<H", 0x0030) + b"\x00" * 10
    store = struct.pack("<H", 0x0001) + b"DICM" + b"\x00" * 32
    for packets in (
        [_assoc_rq(), _pdata(echo), _release()],
        [_assoc_rq(calling=b"STORESCU"), _pdata(store), _pdata(echo),
         _release()],
        [_assoc_rq(user_info=b"\x51\x00\x00\x04\x00\x00\x40\x00"),
         _pdata(echo), _pdata(echo), _pdata(echo), _release()],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for packet in packets:
            builder.packet(con, packet)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="dcmtk",
    protocol="dicom",
    make_program=DcmtkServer,
    surface_factory=lambda: AttackSurface.tcp_server(PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.06,
    libpreeny_compatible=False,
    planted_bugs=("asan-heap-overflow:dcmtk-userinfo-overflow",),
    notes="ASAN-gated heap overflow (Table 1 footnote): without ASAN the "
          "corruption must accumulate past the initial heap slack.",
)
