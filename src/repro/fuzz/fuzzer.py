"""The Nyx-Net campaign loop.

Ties together corpus scheduling, snapshot placement policies, the
mutation engine, the executor and statistics:

1. pick a queue entry;
2. ask the policy for a snapshot index ("Each time a new input is
   scheduled for fuzzing, we randomly decide whether to use
   incremental snapshots for this input", §3.4);
3. run the entry once from the root, creating the incremental snapshot
   at the chosen packet;
4. run a batch of suffix mutations against the incremental snapshot
   (tens to hundreds — reuse ≥50 pays off per §3.4);
5. feed coverage novelty back into the queue and the policy, then
   discard the incremental snapshot and return to the root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.coverage.bitmap import CoverageMap
from repro.fuzz.crash import CrashDatabase
from repro.fuzz.executor import ExecResult, NyxExecutor
from repro.fuzz.input import FuzzInput, packets_input
from repro.fuzz.mutators import MutationEngine
from repro.fuzz.policies import SnapshotPolicy, make_policy
from repro.fuzz.queue import Corpus, QueueEntry
from repro.fuzz.stats import CampaignStats
from repro.sim.rng import DeterministicRandom


@dataclass
class FuzzerConfig:
    """Tunables for one campaign."""

    policy: str = "balanced"
    seed: int = 0
    #: Suffix mutations per incremental snapshot cycle (§3.4: "even for
    #: short state sequences reusing the snapshot as little as 50 times
    #: yields significant performance increases").
    iterations_per_snapshot: int = 50
    #: Mutations per scheduled entry when running from the root.
    iterations_root: int = 25
    dictionary: Sequence[bytes] = ()
    #: Stop conditions: simulated seconds and/or host-side exec count.
    time_budget: float = 60.0
    max_execs: Optional[int] = None
    #: End the campaign at the first unique crash (time-to-solve /
    #: time-to-crash experiments).
    stop_on_first_crash: bool = False
    #: Extra simulated cost charged per execution.  Used to model
    #: harnesses with more expensive resets on the same executor
    #: (e.g. IJON restarting the game process every run).
    per_exec_surcharge: float = 0.0
    #: Run the reset sanitizer (digest-diff of the host object graph
    #: against the post-root-snapshot baseline) every N executions.
    #: ``None`` disables it.  See docs/robustness.md.
    sanitize_every: Optional[int] = None
    #: Maximum snapshot chain depth (base + overlays).  1 keeps the
    #: paper's single incremental snapshot (the classic byte-identical
    #: path); >1 lets policies stack overlay snapshots along an input
    #: and steer suffix runs between them (see docs/snapshots.md).
    max_chain_depth: int = 1


class NyxNetFuzzer:
    """A coverage-guided snapshot fuzzer for one target VM."""

    def __init__(self, executor: NyxExecutor, seeds: Sequence[FuzzInput],
                 config: Optional[FuzzerConfig] = None) -> None:
        self.executor = executor
        self.config = config or FuzzerConfig()
        # The config is authoritative for chain depth: the executor
        # truncates placement lists against its own copy, so the two
        # must agree or points would be dropped silently.
        self.executor.max_chain_depth = max(1, self.config.max_chain_depth)
        self.rng = DeterministicRandom(self.config.seed)
        self.policy: SnapshotPolicy = make_policy(self.config.policy)
        self.coverage = CoverageMap()
        self.corpus = Corpus(self.rng)
        self.mutator = MutationEngine(self.rng, self.config.dictionary)
        self.crashes = CrashDatabase()
        self.stats = CampaignStats(
            fuzzer_name="nyx-net-%s" % self.policy.name)
        self._seeds = [s.copy() for s in seeds]
        self._seeded = False
        #: The entry most recently scheduled by :meth:`step` — the
        #: parallel supervisor's suspect when a step raises.
        self.last_entry: Optional[QueueEntry] = None
        #: Armed by :meth:`begin_campaign` when
        #: :attr:`FuzzerConfig.sanitize_every` is set.  Resume re-arms
        #: it from config before restore_state, so it never travels.
        self.sanitizer = None  # nyx: state[ephemeral]
        #: NYX05x diagnostics the sanitizer reported (capped).
        self.sanitizer_findings: list = []
        self._next_sanitize: Optional[int] = None

    @property
    def clock(self):
        return self.executor.machine.clock

    # ------------------------------------------------------------------
    # campaign
    # ------------------------------------------------------------------

    def run_campaign(self) -> CampaignStats:
        """Run until the time budget or exec cap is exhausted."""
        self.begin_campaign()
        while self.step():
            pass
        return self.finish_campaign()

    def begin_campaign(self) -> None:
        """Import the seed corpus (idempotent; called before stepping)."""
        if self._seeded:
            return
        self._seeded = True
        if self.config.sanitize_every:
            self._arm_sanitizer()
        self._import_seeds()

    def step(self) -> bool:
        """Run one scheduling iteration; False once the budget is spent.

        Parallel campaigns drive workers through this entry point so
        the orchestrator can interleave instances deterministically on
        the sim clock and sync corpora between slices.
        """
        if self.clock.now >= self.config.time_budget or self._exec_capped():
            return False
        if not self.corpus.entries:
            # No seeds were provided: fall back to Nyx's purely
            # generative mode — random well-typed op sequences from
            # the spec (§2.2).
            self._import_input(self._generate_input())
            return True
        entry = self.corpus.next_entry()
        self.last_entry = entry
        self._fuzz_entry(entry)
        self.stats.record_execs(self.clock.now)
        if (self._next_sanitize is not None
                and self.stats.execs >= self._next_sanitize):
            self._sanitize_check()
        return True

    def finish_campaign(self) -> CampaignStats:
        """Stamp the final counters and return the stats."""
        if self.sanitizer is not None:
            # One last check so even short campaigns audit their resets.
            self._sanitize_check()
        self.stats.end_time = self.clock.now
        self.stats.queue_size = len(self.corpus)
        self.stats.snapshot_rebuilds = self.executor.snapshot_rebuilds
        self.stats.degraded_root_only = self.executor.degraded_root_only
        self.stats.prefix_elisions = self.executor.prefix_elisions
        self.stats.prefix_elided_ops = self.executor.prefix_elided_ops
        self.stats.elision_invalidations = self.executor.elision_invalidations
        snap_stats = self.executor.machine.snapshots.stats
        self.stats.chain_pushes = snap_stats.overlay_pushes
        self.stats.chain_commits = snap_stats.overlay_commits
        self.stats.chain_restores = snap_stats.chain_restores
        self.stats.chain_deepest = snap_stats.deepest_chain
        tracer = self.executor.tracer
        if tracer is not None:
            self.stats.fold_memo_evictions = tracer.fold_evictions
            self.stats.coverage_backend = tracer.backend_name
        injector = getattr(self.executor.interceptor, "injector", None)
        if injector is not None:
            self.stats.faults_injected = injector.faults_injected
        return self.stats

    # ------------------------------------------------------------------
    # corpus sync (parallel campaigns)
    # ------------------------------------------------------------------

    def export_new_entries(self, since_id: int = 0):
        """Corpus entries found since the given watermark id."""
        return self.corpus.export_entries(since_id)

    def absorb_foreign(self, entries, spec=None) -> list:
        """Adopt peer corpus entries: enqueue them and fold their
        traces into this worker's coverage map, so already-discovered
        behaviour is not rediscovered from scratch.  With a ``spec``,
        damaged entries are repaired (or skipped) on the way in."""
        adopted = self.corpus.import_foreign(entries,
                                             found_at=self.clock.now,
                                             spec=spec)
        for entry in adopted:
            if entry.trace:
                self.coverage.has_new_bits(entry.trace)
        if adopted:
            self.stats.record_coverage(self.clock.now,
                                       self.coverage.edge_count())
            self.stats.queue_size = len(self.corpus)
        return adopted

    def _exec_capped(self) -> bool:
        cap = self.config.max_execs
        if cap is not None and self.stats.execs >= cap:
            return True
        return (self.config.stop_on_first_crash
                and len(self.crashes) > 0)

    # ------------------------------------------------------------------
    # durability (checkpoint/resume)
    # ------------------------------------------------------------------

    #: Version stamp inside every checkpointed fuzzer state; bumped on
    #: any incompatible change so resume fails loudly, never subtly.
    #: 2: sanitizer_findings joined the capture set (NYX060 fix).
    #: 3: overlay chains — queue entries carry bandit arm statistics
    #: and the executor's durable state gained chain-cursor keys.
    STATE_FORMAT = 3

    def snapshot_state(self) -> dict:
        """Full resumable state, valid at a step boundary only.

        Every :meth:`step` ends with the VM back at the root snapshot
        (suffix cycles finish with ``restore_root``; from-root runs end
        with ``reset_for_next_test``), so no guest memory needs to
        travel: the checkpoint is the RNG position, the sim clock, the
        corpus/coverage/crash state and the handful of host-side
        cursors that shape future sim charges.  The caller pickles the
        returned dict immediately — it holds live references.
        """
        injector = getattr(self.executor.interceptor, "injector", None)
        return {
            "format": self.STATE_FORMAT,
            "clock": self.clock.now,
            "rng": self.rng.getstate(),
            "seeded": self._seeded,
            "next_sanitize": self._next_sanitize,
            "sanitizer_findings": list(self.sanitizer_findings),
            "stats": self.stats,
            "corpus": self.corpus.snapshot_state(),
            "coverage": self.coverage.snapshot_state(),
            "crashes": self.crashes.snapshot_state(),
            "executor": self.executor.durable_state(),
            "injector": (injector.snapshot_state()
                         if injector is not None else None),
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a checkpointed state on a freshly built campaign.

        The campaign must have been rebuilt with the *same* config
        (the durability layer validates the manifest first).  When the
        sanitizer is configured it must be re-armed *before* this call:
        its baseline digest is content-based and deterministic, and the
        absolute clock restore below erases the arming charges.
        """
        if state.get("format") != self.STATE_FORMAT:
            raise ValueError("incompatible checkpoint state format %r "
                             "(this build speaks %d)"
                             % (state.get("format"), self.STATE_FORMAT))
        self.rng.setstate(state["rng"])
        self._seeded = bool(state["seeded"])
        self._next_sanitize = state["next_sanitize"]
        self.sanitizer_findings = list(state["sanitizer_findings"])
        self.stats = state["stats"]
        self.corpus.restore_state(state["corpus"])
        self.coverage.restore_state(state["coverage"])
        self.crashes.restore_state(state["crashes"])
        self.executor.restore_durable_state(state["executor"])
        injector = getattr(self.executor.interceptor, "injector", None)
        if injector is not None and state.get("injector") is not None:
            injector.restore_state(state["injector"])
        self.last_entry = None
        # Last: snap the clock to the checkpointed instant, erasing the
        # rebuild/re-arm charges accrued while reconstructing the VM.
        self.clock.restore(state["clock"])

    # ------------------------------------------------------------------
    # reset sanitizer (NYX05x)
    # ------------------------------------------------------------------

    def _arm_sanitizer(self) -> None:
        """Capture the post-root-snapshot digest baseline.

        The baseline is taken from the canonical reset state — root
        restored, interceptor per-test state dropped — which is exactly
        the state every later check re-establishes before digesting.
        """
        from repro.analysis.sanitizer import ResetSanitizer
        self.executor.finish_snapshot_cycle()
        self.executor.interceptor.reset_for_test()
        self.sanitizer = ResetSanitizer.for_executor(self.executor)
        self.sanitizer.capture_baseline()
        self._next_sanitize = self.stats.execs + self.config.sanitize_every

    def _sanitize_check(self) -> None:
        """Reset to the root and diff the object graph digest."""
        self.executor.finish_snapshot_cycle()
        self.executor.interceptor.reset_for_test()
        findings = self.sanitizer.check()
        self.stats.sanitizer_checks += 1
        leaks = [d for d in findings if d.code in ("NYX050", "NYX051")]
        self.stats.sanitizer_leaks += len(leaks)
        room = 100 - len(self.sanitizer_findings)
        if room > 0:
            self.sanitizer_findings.extend(findings[:room])
        if self.config.sanitize_every:
            self._next_sanitize = (self.stats.execs
                                   + self.config.sanitize_every)

    # ------------------------------------------------------------------
    # per-entry fuzzing
    # ------------------------------------------------------------------

    def _fuzz_entry(self, entry: QueueEntry) -> None:
        if self.config.max_chain_depth > 1:
            points = self.policy.choose_chain(entry, self.rng,
                                              self.config.max_chain_depth)
            if len(points) > 1:
                self._fuzz_with_chain(entry, points)
            elif points:
                self._fuzz_with_incremental(entry, points[0])
            else:
                self._fuzz_from_root(entry)
            return
        snapshot_packet = self.policy.choose(entry, self.rng)
        if snapshot_packet is None:
            self._fuzz_from_root(entry)
        else:
            self._fuzz_with_incremental(entry, snapshot_packet)

    def _fuzz_from_root(self, entry: QueueEntry) -> None:
        found_new = False
        for _ in range(self.config.iterations_root):
            if self._budget_exhausted():
                break
            child = self.mutator.mutate(
                entry.input, from_index=0,
                splice_donor=self.corpus.splice_donor(entry))
            # Any op prefix the child still shares with its parent
            # replays with the tracer elided against the parent's
            # recording.
            result = self.executor.run_full(child,
                                            parent_key=entry.entry_id)
            if self._process_result(child, result):
                found_new = True
        self.policy.feedback(entry, found_new, self.config.iterations_root)

    def _fuzz_with_incremental(self, entry: QueueEntry,
                               snapshot_packet: int) -> None:
        # One full run creates the incremental snapshot after the
        # chosen packet (and is itself a normal execution).
        base = entry.input
        result = self.executor.run_full(base,
                                        snapshot_after_packet=snapshot_packet,
                                        parent_key=entry.entry_id)
        self._process_result(base, result, count_as_new_input=False)
        # Entries discovered by suffix runs carry no recording of their
        # own; this capture run's (charge-clamped) recording fills in.
        self.executor.remember_trace(entry.entry_id, result, replace=False)
        resume = self.executor.suffix_resume_index
        found_new = False
        iterations = self.config.iterations_per_snapshot
        if resume is None:
            # Snapshot creation failed (e.g. crash before the point);
            # fall back to root fuzzing for this schedule.
            self.policy.feedback(entry, False, 0)
            self.executor.finish_snapshot_cycle()
            return
        for _ in range(iterations):
            if self._budget_exhausted():
                break
            child = self.mutator.mutate(
                base, from_index=resume,
                splice_donor=self.corpus.splice_donor(entry))
            result = self.executor.run_suffix(child)
            self.stats.suffix_execs += 1
            if self._process_result(child, result):
                found_new = True
        self.policy.feedback(entry, found_new, iterations)
        # Scheduling moves on: drop the secondary snapshot.
        self.executor.finish_snapshot_cycle()

    def _fuzz_with_chain(self, entry: QueueEntry,
                         points: Sequence[int]) -> None:
        """Multi-point variant of :meth:`_fuzz_with_incremental`: one
        capture run stacks a chain node after each chosen packet, then
        each suffix iteration asks the policy which node (arm) to
        resume from and reports the arm's coverage yield back."""
        base = entry.input
        result = self.executor.run_full(base,
                                        snapshot_after_packets=list(points),
                                        parent_key=entry.entry_id)
        self._process_result(base, result, count_as_new_input=False)
        self.executor.remember_trace(entry.entry_id, result, replace=False)
        if self.executor.chain_node_count == 0:
            # Snapshot creation failed (e.g. crash before the first
            # point); fall back to root fuzzing for this schedule.
            self.policy.feedback(entry, False, 0)
            self.executor.finish_snapshot_cycle()
            return
        found_new = False
        iterations = self.config.iterations_per_snapshot
        for _ in range(iterations):
            if self._budget_exhausted():
                break
            # The chain can shrink mid-cycle (self-healing after a
            # corrupted layer), so re-read the arm count every pull.
            depth_count = self.executor.chain_node_count
            if depth_count == 0:
                break
            arm = self.policy.pick_arm(entry, self.rng, depth_count)
            resume = self.executor.chain_resume_index(arm)
            if resume is None:
                break
            child = self.mutator.mutate(
                base, from_index=resume,
                splice_donor=self.corpus.splice_donor(entry))
            result = self.executor.run_suffix(child, depth=arm)
            self.stats.suffix_execs += 1
            hit = self._process_result(child, result)
            if hit:
                found_new = True
            self.policy.arm_feedback(entry, arm, hit,
                                     sim_cost=result.exec_time)
        self.policy.feedback(entry, found_new, iterations)
        self.executor.finish_snapshot_cycle()

    def _budget_exhausted(self) -> bool:
        return self.clock.now >= self.config.time_budget or self._exec_capped()

    # ------------------------------------------------------------------
    # result processing
    # ------------------------------------------------------------------

    def _process_result(self, input_: FuzzInput, result: ExecResult,
                        count_as_new_input: bool = True) -> bool:
        """Coverage/crash bookkeeping; returns True on novelty."""
        self.stats.execs += 1
        if self.config.per_exec_surcharge:
            self.clock.charge(self.config.per_exec_surcharge)
        if result.timed_out:
            # The watchdog cut the run short: its trace is partial, so
            # it feeds neither coverage nor the corpus (the paper's
            # timeout class is reported, not fuzzed from).
            self.stats.timeouts += 1
            return False
        now = self.clock.now
        found_new = False
        if result.crash is not None:
            if self.crashes.add(result.crash, input_, now,
                                exec_time=result.exec_time):
                self.stats.record_crash(result.crash.dedup_key, now)
                found_new = True
        verdict = self.coverage.has_new_bits(result.trace)
        if verdict != CoverageMap.NEW_NOTHING:
            self.stats.record_coverage(now, self.coverage.edge_count())
            if count_as_new_input and verdict == CoverageMap.NEW_EDGE:
                entry = self.corpus.add(
                    input_.copy(), exec_time=result.exec_time,
                    new_edges=self.coverage.edge_count(),
                    found_at=now,
                    checksum=self.coverage.checksum(result.trace),
                    packets_consumed=result.packets_consumed,
                    trace=dict(result.trace))
                # Future children of this entry elide their shared
                # prefix against this run's recording.
                self.executor.remember_trace(entry.entry_id, result)
                found_new = True
        return found_new

    # ------------------------------------------------------------------
    # seeding
    # ------------------------------------------------------------------

    def _import_seeds(self) -> None:
        for seed in self._seeds:
            if self._budget_exhausted():
                break
            self._import_input(seed)
            # Also import a variant that closes the connection (the
            # spec's shutdown opcode): servers have whole EOF-handling
            # paths that never run if the fuzzer leaves sessions open.
            variant = self._shutdown_variant(seed)
            if variant is not None and not self._budget_exhausted():
                self._import_input(variant)

    def _generate_input(self) -> FuzzInput:
        from repro.spec.generate import generate_input
        from repro.spec.nodes import default_network_spec
        ops = generate_input(default_network_spec(), self.rng,
                             dictionary=list(self.config.dictionary) or None)
        if not ops:
            return packets_input([b"\x00" * 8])
        generated = FuzzInput(ops, origin="generated")
        return generated

    @staticmethod
    def _shutdown_variant(seed: FuzzInput) -> Optional[FuzzInput]:
        from repro.spec.bytecode import Op
        if any(op.node == "shutdown" for op in seed.ops):
            return None
        if not any(op.node == "connection" for op in seed.ops):
            return None
        variant = seed.copy()
        variant.origin = "seed+shutdown"
        variant.ops.append(Op("shutdown", (0,)))
        return variant

    def _import_input(self, seed: FuzzInput) -> None:
        result = self.executor.run_full(seed)
        self.stats.execs += 1
        if result.timed_out:
            # Seeds are still imported on timeout — an empty corpus is
            # worse than one with partial-trace seeds.
            self.stats.timeouts += 1
        now = self.clock.now
        if result.crash is not None and self.crashes.add(
                result.crash, seed, now, exec_time=result.exec_time):
            self.stats.record_crash(result.crash.dedup_key, now)
        self.coverage.has_new_bits(result.trace)
        self.stats.record_coverage(now, self.coverage.edge_count())
        entry = self.corpus.add(seed, exec_time=result.exec_time,
                                new_edges=self.coverage.edge_count(),
                                found_at=now,
                                checksum=self.coverage.checksum(result.trace),
                                packets_consumed=result.packets_consumed,
                                trace=dict(result.trace))
        self.executor.remember_trace(entry.entry_id, result)
