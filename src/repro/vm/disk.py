"""Emulated block device with two-level snapshot overlays.

§4.2 of the paper: "To handle write accesses to emulated disks, Nyx-Net
introduces a second caching layer to store dirtied sectors representing
incremental snapshots.  Like Nyx, we use a hashmap lookup to find
sectors in the snapshot, otherwise we fall back to Nyx's root snapshot."

We model the same structure: a read-only base image, a *root overlay*
hashmap holding sectors written since boot (this is what the root
snapshot freezes) and an *incremental overlay* on top of it.  Reads walk
incremental overlay → root overlay → base image.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

SECTOR_SIZE = 512

_ZERO_SECTOR = bytes(SECTOR_SIZE)


class DiskError(Exception):
    """Raised on out-of-range sector accesses."""


class EmulatedDisk:
    """A sector-addressed block device with snapshot overlays."""

    def __init__(self, num_sectors: int, base_image: Optional[Dict[int, bytes]] = None) -> None:
        if num_sectors <= 0:
            raise ValueError("disk must have at least one sector")
        self.num_sectors = num_sectors
        #: Immutable content present at boot (sparse; missing = zeros).
        self._base: Dict[int, bytes] = dict(base_image or {})
        #: Live writes since boot.  The root snapshot freezes a copy.
        self._live: Dict[int, bytes] = {}
        #: Sectors written since the last dirty flush.  Part of the
        #: reset mechanism itself: the snapshot manager drains it via
        #: take_dirty() on every capture/restore cycle.
        self._dirty: Set[int] = set()  # nyx: allow[reset]
        for sector, data in self._base.items():
            self._check(sector)
            if len(data) != SECTOR_SIZE:
                raise ValueError("base image sector %d has wrong size" % sector)

    # -- I/O ---------------------------------------------------------------

    def read_sector(self, sector: int) -> bytes:
        self._check(sector)
        if sector in self._live:
            return self._live[sector]
        return self._base.get(sector, _ZERO_SECTOR)

    def write_sector(self, sector: int, data: bytes) -> None:
        self._check(sector)
        if len(data) != SECTOR_SIZE:
            raise ValueError("sector writes must be exactly SECTOR_SIZE bytes")
        self._live[sector] = data
        self._dirty.add(sector)

    def write(self, offset: int, data: bytes) -> None:
        """Byte-granular write helper (read-modify-write per sector)."""
        end = offset + len(data)
        if offset < 0 or end > self.num_sectors * SECTOR_SIZE:
            raise DiskError("write outside disk bounds")
        pos = offset
        view = memoryview(data)
        while view:
            sector, s_off = divmod(pos, SECTOR_SIZE)
            chunk = min(len(view), SECTOR_SIZE - s_off)
            old = self.read_sector(sector)
            self.write_sector(sector, old[:s_off] + bytes(view[:chunk]) + old[s_off + chunk:])
            view = view[chunk:]
            pos += chunk

    def read(self, offset: int, length: int) -> bytes:
        """Byte-granular read helper."""
        end = offset + length
        if offset < 0 or end > self.num_sectors * SECTOR_SIZE:
            raise DiskError("read outside disk bounds")
        out = bytearray()
        pos = offset
        remaining = length
        while remaining:
            sector, s_off = divmod(pos, SECTOR_SIZE)
            chunk = min(remaining, SECTOR_SIZE - s_off)
            out += self.read_sector(sector)[s_off:s_off + chunk]
            pos += chunk
            remaining -= chunk
        return bytes(out)

    # -- snapshot support -----------------------------------------------------

    def take_dirty(self) -> List[int]:
        """Return and clear the set of sectors written since last flush."""
        dirty = sorted(self._dirty)
        self._dirty.clear()
        return dirty

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def capture_overlay(self) -> Dict[int, bytes]:
        """Copy of the live overlay (what a snapshot must remember)."""
        return dict(self._live)

    def restore_overlay(self, overlay: Dict[int, bytes], dirty_sectors: List[int]) -> None:
        """Reset ``dirty_sectors`` to their content in ``overlay``.

        Sectors absent from the overlay fall back to the base image —
        the same hashmap-then-root-fallback lookup as §4.2.
        """
        for sector in dirty_sectors:
            if sector in overlay:
                self._live[sector] = overlay[sector]
            else:
                self._live.pop(sector, None)

    def _check(self, sector: int) -> None:
        if not 0 <= sector < self.num_sectors:
            raise DiskError(
                "sector %d out of range (disk has %d sectors)" % (sector, self.num_sectors))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "EmulatedDisk(%d sectors, %d live, %d dirty)" % (
            self.num_sectors, len(self._live), len(self._dirty))
