"""Simulated whole-VM substrate.

This package stands in for the paper's KVM/QEMU stack: paged guest
physical memory with hardware-style dirty logging
(:mod:`repro.vm.memory`), serializable emulated devices
(:mod:`repro.vm.devices`), an emulated block device with two-level
snapshot overlays (:mod:`repro.vm.disk`), root and incremental
whole-VM snapshots (:mod:`repro.vm.snapshot`), and the machine object
that ties them to the guest OS (:mod:`repro.vm.machine`).
"""

from repro.vm.memory import GuestMemory, Region, RegionAllocator
from repro.vm.devices import DeviceBoard
from repro.vm.disk import EmulatedDisk
from repro.vm.snapshot import SnapshotManager, RootSnapshot
from repro.vm.machine import Machine
from repro.vm.hypercall import Hypercall, HypercallError

__all__ = [
    "GuestMemory",
    "Region",
    "RegionAllocator",
    "DeviceBoard",
    "EmulatedDisk",
    "SnapshotManager",
    "RootSnapshot",
    "Machine",
    "Hypercall",
    "HypercallError",
]
