"""Snapshot placement policies (§3.4 of the paper).

A policy, given the queue entry about to be fuzzed, picks the *packet
index* after which the incremental snapshot is taken — or ``None`` for
the root snapshot.  The three shipped policies match the paper:

* **none** — "a policy that always selects the root snapshot".
* **balanced** — "On inputs with more than four packets, the balanced
  policy chooses the root snapshot in 4% of the cases.  Otherwise it
  selects a random index in the whole (50%), or only in the second
  half (50%)."  Inputs of four or fewer packets use the root.
* **aggressive** — "cycles all available indices [...]  The first time
  an input is scheduled, it creates the snapshot at the end of the
  input.  Each time no new inputs have been found by fuzzing this
  snapshot for 50 iterations, we place the snapshot one packet
  earlier.  When [it] reaches the smallest index, it starts again from
  the end."

**Chain placement (beyond the paper).**  With overlay chains enabled
(``--max-chain-depth`` > 1) a policy may place *several* snapshot
points per capture run (:meth:`SnapshotPolicy.choose_chain`) and then
steer which chain node each suffix iteration resumes from
(:meth:`SnapshotPolicy.pick_arm` / :meth:`arm_feedback`).  The shipped
**bandit** policy spaces its points evenly through the packet list and
runs a UCB1 bandit over the resulting nodes: arm = chain depth, reward
= coverage yield per simulated second spent, so arms that find new
edges cheaply (deep nodes re-execute almost nothing) win pulls.  All
decisions draw only on :class:`DeterministicRandom` and per-entry
state, keeping campaigns replayable.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.fuzz.queue import QueueEntry
from repro.sim.rng import DeterministicRandom

#: Minimum packet count before non-root snapshots are considered.
MIN_PACKETS_FOR_SNAPSHOT = 5
#: Aggressive policy: fruitless iterations before moving the cursor.
AGGRESSIVE_PATIENCE = 50
#: UCB1 exploration weight for the bandit policy.  Deliberately small:
#: the throughput gap between a deep and a shallow resume is the
#: signal the bandit exists to exploit, and a large exploration bonus
#: would spread pulls uniformly and burn the chain's advantage.
BANDIT_UCB_C = 0.15
#: Weight of the throughput prior in an arm's value: how strongly the
#: bandit prefers arms whose suffix runs are sim-cheap (deep resumes)
#: before any coverage reward arrives.  The cheapest arm earns the
#: full prior, the most expensive earns none.
BANDIT_THROUGHPUT_PRIOR = 1.0


class SnapshotPolicy:
    """Interface: choose a snapshot packet index for an entry."""

    name = "abstract"

    def choose(self, entry: QueueEntry, rng: DeterministicRandom) -> Optional[int]:
        """Return a packet *position* (0-based, into the entry's packet
        list) after which to snapshot, or None for the root."""
        raise NotImplementedError

    def feedback(self, entry: QueueEntry, found_new: bool,
                 iterations: int) -> None:
        """Called after a snapshot cycle with its outcome."""

    # -- overlay-chain extensions (default: single-point behaviour) -----

    def choose_chain(self, entry: QueueEntry, rng: DeterministicRandom,
                     max_depth: int) -> List[int]:
        """Ascending packet positions to snapshot after (at most
        ``max_depth``); ``[]`` for the root.  Default: the single
        :meth:`choose` point, so chain-unaware policies behave exactly
        as before."""
        point = self.choose(entry, rng)
        return [] if point is None else [point]

    def pick_arm(self, entry: QueueEntry, rng: DeterministicRandom,
                 depth_count: int) -> int:
        """Chain depth (1-based, <= ``depth_count``) the next suffix
        iteration resumes from.  Default: the deepest node — the
        closest state to the mutation site."""
        return depth_count

    def arm_feedback(self, entry: QueueEntry, arm: int, found_new: bool,
                     sim_cost: float) -> None:
        """Outcome of one suffix iteration run from ``arm``:
        ``found_new`` says whether it yielded new coverage,
        ``sim_cost`` the simulated seconds it burned."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<policy %s>" % self.name


class NonePolicy(SnapshotPolicy):
    """Nyx-Net-none: always the root snapshot."""

    name = "none"

    def choose(self, entry: QueueEntry, rng: DeterministicRandom) -> Optional[int]:
        return None


class BalancedPolicy(SnapshotPolicy):
    """Nyx-Net-balanced."""

    name = "balanced"

    def choose(self, entry: QueueEntry, rng: DeterministicRandom) -> Optional[int]:
        n = entry.fuzzable_packets()
        if n < MIN_PACKETS_FOR_SNAPSHOT:
            return None
        if rng.chance(0.04):
            return None
        if rng.chance(0.5):
            return rng.randrange(n - 1)          # anywhere (not the very end,
        return (n // 2) + rng.randrange(n - n // 2 - 1 or 1)  # second half

    def feedback(self, entry: QueueEntry, found_new: bool,
                 iterations: int) -> None:
        pass  # stateless


class AggressivePolicy(SnapshotPolicy):
    """Nyx-Net-aggressive: cycle the cursor from the end towards 0."""

    name = "aggressive"

    def choose(self, entry: QueueEntry, rng: DeterministicRandom) -> Optional[int]:
        n = entry.fuzzable_packets()
        if n < MIN_PACKETS_FOR_SNAPSHOT:
            return None
        last = n - 2  # snapshot after the second-to-last packet at most:
        # snapshotting after the final packet would leave nothing to fuzz.
        if last < 0:
            return None
        if entry.aggr_cursor is None or entry.aggr_cursor > last:
            entry.aggr_cursor = last
        return entry.aggr_cursor

    def feedback(self, entry: QueueEntry, found_new: bool,
                 iterations: int) -> None:
        if found_new:
            entry.aggr_fruitless = 0
            return
        entry.aggr_fruitless += iterations
        if entry.aggr_fruitless >= AGGRESSIVE_PATIENCE:
            entry.aggr_fruitless = 0
            if entry.aggr_cursor is None:
                return
            entry.aggr_cursor -= 1
            if entry.aggr_cursor < 0:
                entry.aggr_cursor = None  # wrap: back to the end next time


class BanditPolicy(SnapshotPolicy):
    """UCB1 bandit over chain nodes (arm = prefix depth).

    Placement: up to ``max_depth`` points spaced evenly through the
    fuzzable packets, the deepest at the aggressive policy's classic
    ``n - 2`` (snapshotting after the final packet would leave nothing
    to fuzz).  Scheduling: unexplored arms first (deepest preferred),
    then UCB1 over an arm *value* that combines the coverage reward
    rate with a throughput prior scaled by the arm's measured mean sim
    cost — a new edge found from a cheap deep node outscores the same
    edge found by re-running half the input, and with no rewards at
    all the bandit concentrates on the cheapest (deepest) arms while
    still exploring shallow ones at the UCB rate.  Arm statistics live
    on the queue entry (``arm_pulls``/``arm_reward``/``arm_cost``), so
    they persist across schedules and travel through corpus
    checkpoints.

    With ``max_depth`` clamped to 1 the placement degenerates to the
    single deepest point and the fuzzer's classic single-snapshot path
    runs unchanged.
    """

    name = "bandit"

    def choose(self, entry: QueueEntry, rng: DeterministicRandom) -> Optional[int]:
        n = entry.fuzzable_packets()
        if n < MIN_PACKETS_FOR_SNAPSHOT:
            return None
        last = n - 2
        return last if last >= 0 else None

    def choose_chain(self, entry: QueueEntry, rng: DeterministicRandom,
                     max_depth: int) -> List[int]:
        last = self.choose(entry, rng)
        if last is None:
            return []
        depth = min(max_depth, last + 1)
        if depth <= 1:
            return [last]
        # Evenly spaced through [0, last], always ending at ``last``.
        points = []
        for i in range(1, depth + 1):
            point = (i * (last + 1)) // depth - 1
            if point >= 0 and (not points or point > points[-1]):
                points.append(point)
        return points

    def pick_arm(self, entry: QueueEntry, rng: DeterministicRandom,
                 depth_count: int) -> int:
        if depth_count <= 1:
            return depth_count
        pulls = entry.arm_pulls
        if pulls is None:
            return depth_count
        # Unexplored arms first, deepest preferred (cheapest resumes).
        total = 0
        for arm in range(depth_count, 0, -1):
            n = pulls.get(arm, 0)
            if n == 0:
                return arm
            total += n
        rewards = entry.arm_reward or {}
        costs = entry.arm_cost or {}
        # Throughput prior: normalize each arm's mean sim cost against
        # the most expensive arm, so the cheapest arm earns the full
        # prior and the dearest earns none.  This is what lets the
        # bandit concentrate on deep (cheap) resumes before any
        # coverage reward distinguishes the arms.
        max_mean_cost = 0.0
        for arm in range(depth_count, 0, -1):
            mean_cost = costs.get(arm, 0.0) / pulls[arm]
            if mean_cost > max_mean_cost:
                max_mean_cost = mean_cost
        log_total = math.log(total)
        best = depth_count
        best_score = -1.0
        for arm in range(depth_count, 0, -1):
            n = pulls[arm]
            value = rewards.get(arm, 0.0) / n
            if max_mean_cost > 0.0:
                mean_cost = costs.get(arm, 0.0) / n
                value += (BANDIT_THROUGHPUT_PRIOR
                          * (1.0 - mean_cost / max_mean_cost))
            score = value + BANDIT_UCB_C * math.sqrt(log_total / n)
            # Strict > while walking deep-to-shallow: ties go deep.
            if score > best_score:
                best = arm
                best_score = score
        return best

    def arm_feedback(self, entry: QueueEntry, arm: int, found_new: bool,
                     sim_cost: float) -> None:
        if entry.arm_pulls is None:
            entry.arm_pulls = {}
            entry.arm_reward = {}
            entry.arm_cost = {}
        if entry.arm_cost is None:  # entries from pre-cost checkpoints
            entry.arm_cost = {}
        entry.arm_pulls[arm] = entry.arm_pulls.get(arm, 0) + 1
        entry.arm_cost[arm] = entry.arm_cost.get(arm, 0.0) + max(sim_cost, 0.0)
        if found_new:
            # Yield per sim-second, squashed into (0, 1]: cheap
            # discoveries (deep resumes) approach 1.
            reward = 1.0 / (1.0 + max(sim_cost, 0.0))
            entry.arm_reward[arm] = entry.arm_reward.get(arm, 0.0) + reward

    def feedback(self, entry: QueueEntry, found_new: bool,
                 iterations: int) -> None:
        pass  # arm_feedback carries the learning signal


def make_policy(name: str) -> SnapshotPolicy:
    """Factory by name: none / balanced / aggressive / bandit."""
    policies = {
        "none": NonePolicy,
        "balanced": BalancedPolicy,
        "aggressive": AggressivePolicy,
        "bandit": BanditPolicy,
    }
    try:
        return policies[name.lower()]()
    except KeyError:
        raise ValueError("unknown policy %r (want none/balanced/"
                         "aggressive/bandit)" % name)
