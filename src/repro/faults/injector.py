"""The fault injector: turns a plan into a deterministic decision stream.

One injector instance is shared by every component of a campaign that
can misbehave on purpose:

* the :class:`~repro.emu.interceptor.Interceptor` consults
  :meth:`recv_fault` / :meth:`send_fault` / :meth:`delay_readiness` on
  the emulated network paths;
* the :class:`~repro.vm.snapshot.SnapshotManager` calls
  :meth:`on_incremental_restore` / :meth:`on_root_restore`, which may
  flip a bit in a CoW mirror page (detected by the manager's checksum
  validation) or charge extra reset latency.

Every decision draws from one :class:`DeterministicRandom` stream in
execution order, so a campaign with the same seed, plan and inputs
replays its faults bit-identically.  Tests (and reproduction of a
specific failure) can bypass the dice entirely with
:meth:`force_next`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.faults.plan import RECV_FAULT_WEIGHTS, FaultKind, FaultPlan
from repro.sim.rng import DeterministicRandom


class FaultInjector:  # nyx: allow[reset]
    """Draws fault decisions for one campaign instance.

    Reset-lint suppression: the fault stream is *campaign*-scoped by
    design — the rng cursor, burst state and counters deliberately
    survive snapshot restores so a ``fp1:<seed>:<rate-ppm>`` plan
    replays bit-identically across the whole campaign, not per exec.
    The restore hooks charge latency / flip snapshot bits; they never
    touch guest state.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = DeterministicRandom(plan.seed)
        #: Total faults injected (all kinds).
        self.faults_injected = 0
        #: Per-kind breakdown for diagnostics.
        self.by_kind: Dict[str, int] = {}
        #: Remaining spurious EAGAINs of the current burst.
        self._eagain_remaining = 0
        #: Explicitly queued faults (tests / replay) served before any
        #: random draw.
        self._forced: Deque[FaultKind] = deque()
        self._weights_total = sum(w for _, w in RECV_FAULT_WEIGHTS)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _fire(self, kind: FaultKind) -> FaultKind:
        self.faults_injected += 1
        self.by_kind[kind.value] = self.by_kind.get(kind.value, 0) + 1
        return kind

    def force_next(self, *kinds: FaultKind) -> None:
        """Queue specific faults ahead of the random stream."""
        self._forced.extend(kinds)

    # -- durability (checkpoint/resume) ----------------------------------

    def snapshot_state(self) -> dict:
        """Picklable injector state (see :mod:`repro.fuzz.journal`).

        The fault stream is part of a campaign's deterministic replay:
        a resumed campaign must draw exactly the faults the killed run
        would have drawn next, so the RNG position, the in-flight
        EAGAIN burst and the counters all travel with the checkpoint.
        """
        return {"rng": self.rng.getstate(),
                "faults_injected": self.faults_injected,
                "by_kind": dict(self.by_kind),
                "eagain_remaining": self._eagain_remaining,
                "forced": list(self._forced)}

    def restore_state(self, state: dict) -> None:
        """Adopt a checkpointed injector state."""
        self.rng.setstate(state["rng"])
        self.faults_injected = int(state["faults_injected"])
        self.by_kind = dict(state["by_kind"])
        self._eagain_remaining = int(state["eagain_remaining"])
        self._forced = deque(state["forced"])

    def _take_forced(self, *allowed: FaultKind) -> Optional[FaultKind]:
        if self._forced and self._forced[0] in allowed:
            return self._forced.popleft()
        return None

    # ------------------------------------------------------------------
    # network faults (interceptor boundary)
    # ------------------------------------------------------------------

    def recv_fault(self) -> Optional[FaultKind]:
        """Decide the fate of one intercepted recv."""
        if self._eagain_remaining > 0:
            self._eagain_remaining -= 1
            return self._fire(FaultKind.EAGAIN_BURST)
        forced = self._take_forced(FaultKind.SHORT_READ,
                                   FaultKind.EAGAIN_BURST,
                                   FaultKind.CONN_RESET, FaultKind.STALL)
        if forced is None:
            if not self.rng.chance(self.plan.recv_rate):
                return None
            forced = self._pick_recv_kind()
        if forced is FaultKind.EAGAIN_BURST:
            # The first EAGAIN of a burst of 1..max_burst.
            self._eagain_remaining = self.rng.randrange(self.plan.max_burst)
        return self._fire(forced)

    def _pick_recv_kind(self) -> FaultKind:
        roll = self.rng.randrange(self._weights_total)
        for kind, weight in RECV_FAULT_WEIGHTS:
            if roll < weight:
                return kind
            roll -= weight
        return RECV_FAULT_WEIGHTS[-1][0]  # pragma: no cover - defensive

    def short_read_bytes(self, max_bytes: int) -> int:
        """A reduced buffer size for a SHORT_READ (at least one byte)."""
        if max_bytes <= 1:
            return max_bytes
        return 1 + self.rng.randrange(min(max_bytes - 1, 8))

    def stall_seconds(self) -> float:
        """Simulated time one STALL burns."""
        return self.plan.stall_seconds

    def send_fault(self) -> Optional[FaultKind]:
        """Decide the fate of one intercepted send."""
        forced = self._take_forced(FaultKind.PARTIAL_SEND)
        if forced is not None:
            return self._fire(forced)
        if self.rng.chance(self.plan.send_rate):
            return self._fire(FaultKind.PARTIAL_SEND)
        return None

    def partial_send_bytes(self, length: int) -> int:
        """How much of a PARTIAL_SEND actually goes through."""
        if length <= 1:
            return length
        return 1 + self.rng.randrange(length - 1)

    def delay_readiness(self) -> bool:
        """Whether to report a ready surface fd as not ready."""
        if self._take_forced(FaultKind.DELAYED_READINESS) is not None:
            self._fire(FaultKind.DELAYED_READINESS)
            return True
        if self.rng.chance(self.plan.readiness_rate):
            self._fire(FaultKind.DELAYED_READINESS)
            return True
        return False

    # ------------------------------------------------------------------
    # host faults (snapshot machinery)
    # ------------------------------------------------------------------

    def on_incremental_restore(self, snapshots) -> None:
        """Called by the snapshot manager before an incremental restore.

        May flip one bit in a *real-copy* mirror page (never a CoW
        reference into the shared root image, which other instances may
        hold) and/or charge slow-reset latency.  The manager's checksum
        validation is responsible for catching the corruption.
        """
        if self._take_forced(FaultKind.SNAPSHOT_BITFLIP) is not None:
            self._corrupt_mirror(snapshots)
        elif self.rng.chance(self.plan.snapshot_rate):
            self._corrupt_mirror(snapshots)
        self._maybe_slow_reset(snapshots)

    def on_root_restore(self, snapshots) -> None:
        """Called before a root restore (latency faults only)."""
        self._maybe_slow_reset(snapshots)

    def _maybe_slow_reset(self, snapshots) -> None:
        forced = self._take_forced(FaultKind.SLOW_RESET)
        if forced is None and not self.rng.chance(self.plan.slow_reset_rate):
            return
        self._fire(FaultKind.SLOW_RESET)
        snapshots.charge_fault_latency(self.plan.slow_reset_seconds)

    def _corrupt_mirror(self, snapshots) -> None:
        touched = sorted(snapshots.mirror_private_pages())
        if not touched:
            return
        idx = touched[self.rng.randrange(len(touched))]
        bit = self.rng.randrange(8)
        self._fire(FaultKind.SNAPSHOT_BITFLIP)
        snapshots.flip_mirror_bit(idx, byte=0, bit=bit)
