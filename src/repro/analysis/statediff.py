"""Runtime checkpoint verifier (NYX065/NYX066): state-diff prong.

The static lint (:mod:`.durlint`) proves the snapshot/restore pairs
*look* complete; this module checks that they *are*, the way the reset
sanitizer (NYX05x) backstops the reset lint:

* **Fixpoint check** (NYX065) — ``snapshot_state`` → pickle round-trip
  → ``restore_state`` → re-``snapshot_state`` must reproduce the same
  structural digest.  Any path that changed names an attribute the
  restore half mangles (or drops) on the way through.

* **Cross-process differential** (NYX066) — restore a durable
  campaign's checkpoint in a *fresh subprocess*, re-step it to the
  parent's exact execution boundary, and compare ``stats_checksum``
  plus the structural digest of the re-snapshotted state against the
  parent's.  Every component is deterministic on the sim clock, so any
  divergence is a real capture gap — named by its exact attribute path
  the way NYX050 does.

The digest deliberately skips :class:`~repro.fuzz.stats.CampaignStats`
host counters: they describe how cheaply the *host* computed the
campaign (and the parent keeps counting while the child replays), so
they are outside ``stats_checksum`` and outside this comparison too.

Wired as ``repro fuzz --verify-checkpoints[=N]`` (the durable runners
call :func:`verify_checkpoint` every N executions after a periodic
checkpoint) and usable standalone::

    python -m repro.analysis.statediff --resume-dir DIR \\
        --until-execs 1200 [--epoch 3] [--inject corpus._cursor]

``--inject`` perturbs one dotted attribute path after re-stepping —
a fault-injection hook that simulates an uncaptured-attribute
regression and proves the differential names that exact path.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import subprocess
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.sanitizer import structural_digest
from repro.fuzz.stats import CampaignStats

#: Pickle protocol matching the checkpoint store's.
_PICKLE_PROTOCOL = 4
#: Depth budget for the state-graph walk (checkpoint states nest
#: corpus -> entry -> input -> ops -> op -> args: ~10 levels).
STATE_MAX_DEPTH = 32
#: Digest-divergence findings reported per comparison before eliding.
_MAX_PATHS = 20


def _host_counter_skips() -> set:
    """``(class, attr)`` pairs excluded from state digests: the
    CampaignStats host-side counters, which stats_checksum excludes
    for the same reason."""
    return {("CampaignStats", name)
            for name in CampaignStats().host_counters()}


def state_digest(state: Any) -> Tuple[Dict[str, str], bool]:
    """Structural digest of one snapshot-state value.

    Unlike the reset sanitizer's graph walk this skips *nothing* but
    the host counters — capture completeness is exactly what is under
    audit here.
    """
    return structural_digest({"state": state},
                             allowed=_host_counter_skips(),
                             skip_attrs=(), max_depth=STATE_MAX_DEPTH)


def _digest_delta(baseline: Dict[str, str], current: Dict[str, str]
                  ) -> List[Tuple[str, Optional[str], Optional[str]]]:
    """``(path, before, after)`` for every diverged path, sorted."""
    delta = []
    for path in sorted(set(baseline) | set(current)):
        before = baseline.get(path)
        after = current.get(path)
        if before != after:
            delta.append((path, before, after))
    return delta


def _pair_methods(obj: Any):
    """The snapshot/restore bound-method pair an object exposes."""
    if hasattr(obj, "snapshot_state"):
        return obj.snapshot_state, obj.restore_state
    if hasattr(obj, "durable_state"):
        return obj.durable_state, obj.restore_durable_state
    raise TypeError("%s exposes no snapshot/restore pair"
                    % type(obj).__name__)


def fixpoint_check(obj: Any) -> List[Diagnostic]:
    """NYX065 findings for snapshot -> restore -> re-snapshot drift.

    The first snapshot is frozen through a pickle round-trip (exactly
    what the checkpoint store does), restored onto the live object,
    and re-snapshotted; the two digests must match path for path.
    """
    snapshot, restore = _pair_methods(obj)
    frozen = pickle.loads(pickle.dumps(snapshot(),
                                       protocol=_PICKLE_PROTOCOL))
    baseline, _trunc = state_digest(frozen)
    restore(pickle.loads(pickle.dumps(frozen, protocol=_PICKLE_PROTOCOL)))
    current, _trunc = state_digest(snapshot())
    name = type(obj).__name__
    diags: List[Diagnostic] = []
    for path, before, after in _digest_delta(baseline, current)[:_MAX_PATHS]:
        diags.append(Diagnostic(
            "NYX065",
            "%s restore is not a fixpoint at %s: %s -> %s"
            % (name, path, before, after), file=name))
    return diags


# ---------------------------------------------------------------------------
# child side: restore, re-step, report
# ---------------------------------------------------------------------------

class _StopAtExecs:
    """Parallel-campaign controller parking the fleet at the first
    slice boundary at or past the target exec count."""

    def __init__(self, campaign, target: int) -> None:
        self.campaign = campaign
        self.target = target

    def should_stop(self) -> bool:
        return self.campaign.total_execs() >= self.target

    def after_slice(self, campaign, worker) -> None:
        pass


def _inject_regression(root: Any, dotted: str) -> None:
    """Perturb one attribute path — the uncaptured-state simulator."""
    obj = root
    parts = dotted.split(".")
    for part in parts[:-1]:
        obj = getattr(obj, part)
    leaf = parts[-1]
    value = getattr(obj, leaf)
    if isinstance(value, bool):
        setattr(obj, leaf, not value)
    elif isinstance(value, int):
        setattr(obj, leaf, value + 1)
    elif isinstance(value, float):
        setattr(obj, leaf, value + 1.0)
    elif isinstance(value, list):
        value.append("<injected>")
    elif isinstance(value, dict):
        value["<injected>"] = 1
    elif isinstance(value, set):
        value.add("<injected>")
    else:
        setattr(obj, leaf, "<injected>")


def _child_report(resume_dir: str, epoch: Optional[int], until_execs: int,
                  inject: Optional[str] = None) -> dict:
    """Restore ``epoch`` from ``resume_dir``, re-step to
    ``until_execs``, and report checksum + digest.

    Opens only the checkpoint store and manifest — never the journal,
    whose open path truncates torn tails and belongs to the parent.
    """
    from repro.fuzz.journal import CheckpointStore, read_manifest
    from repro.perf.macro import stats_checksum
    from repro.targets import PROFILES
    manifest = read_manifest(resume_dir)
    profile = PROFILES.get(manifest.get("target"))
    if profile is None:
        raise SystemExit("unknown target %r" % manifest.get("target"))
    store = CheckpointStore(pathlib.Path(resume_dir) / "checkpoints")
    if epoch is None:
        epochs = store.epochs()
        if not epochs:
            raise SystemExit("no checkpoint epochs under %s" % resume_dir)
        epoch = epochs[-1]
    state = store.load(epoch)
    fixpoint: List[dict] = []

    if manifest.get("kind") == "parallel":
        from repro.fuzz.campaign import build_parallel_campaign_from_manifest
        campaign = build_parallel_campaign_from_manifest(profile, manifest)
        baseline, _trunc = state_digest(state["campaign"])
        campaign.restore_state(state["campaign"])
        relanded, _trunc = state_digest(campaign.snapshot_state())
        for path, before, after in _digest_delta(baseline, relanded):
            fixpoint.append({"path": path, "before": before,
                             "after": after})
        campaign.run(controller=_StopAtExecs(campaign, until_execs))
        if inject:
            _inject_regression(campaign, inject)
        final = campaign.snapshot_state()
        checksum = stats_checksum(campaign.aggregate().merged)
        execs = campaign.total_execs()
    else:
        from repro.fuzz.campaign import build_campaign_from_manifest
        handles = build_campaign_from_manifest(profile, manifest)
        fuzzer = handles.fuzzer
        if fuzzer.config.sanitize_every:
            # Mirror resume_campaign: re-arm before the clock restore.
            fuzzer._arm_sanitizer()
        baseline, _trunc = state_digest(state["fuzzer"])
        fuzzer.restore_state(state["fuzzer"])
        relanded, _trunc = state_digest(fuzzer.snapshot_state())
        for path, before, after in _digest_delta(baseline, relanded):
            fixpoint.append({"path": path, "before": before,
                             "after": after})
        while fuzzer.stats.execs < until_execs:
            if not fuzzer.step():
                break
        if inject:
            _inject_regression(fuzzer, inject)
        final = fuzzer.snapshot_state()
        checksum = stats_checksum(fuzzer.stats)
        execs = fuzzer.stats.execs

    digest, truncated = state_digest(final)
    return {
        "epoch": epoch,
        "execs": execs,
        "stats_checksum": checksum,
        "digest": digest,
        "fixpoint": fixpoint,
        "truncated": truncated,
    }


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro.analysis.statediff",
        description="restore a durable campaign's checkpoint and report "
                    "its re-stepped state digest (NYX066 child side)")
    parser.add_argument("--resume-dir", required=True)
    parser.add_argument("--epoch", type=int, default=None)
    parser.add_argument("--until-execs", type=int, required=True)
    parser.add_argument("--inject", default=None, metavar="DOTTED.PATH")
    args = parser.parse_args(argv)
    report = _child_report(args.resume_dir, args.epoch, args.until_execs,
                           inject=args.inject)
    print(json.dumps(report, sort_keys=True))
    return 0


# ---------------------------------------------------------------------------
# parent side: spawn the child, diff its report
# ---------------------------------------------------------------------------

def verify_checkpoint(directory, epoch: int, until_execs: int,
                      expected_checksum: str,
                      expected_digest: Dict[str, str],
                      kind: str = "single",
                      timeout: float = 600.0,
                      inject: Optional[str] = None) -> List[Diagnostic]:
    """Cross-process checkpoint differential; NYX065/NYX066 findings.

    Spawns a fresh interpreter that restores ``epoch`` under
    ``directory``, re-steps to ``until_execs`` (the parent's current
    step boundary) and reports back.  Deterministic stepping means the
    child must land on the parent's exact state; any path or checksum
    divergence is a capture gap.
    """
    import repro
    where = str(directory)
    cmd = [sys.executable, "-m", "repro.analysis.statediff",
           "--resume-dir", where, "--epoch", str(epoch),
           "--until-execs", str(until_execs)]
    if inject:
        cmd += ["--inject", inject]
    env = dict(os.environ)
    src_root = str(pathlib.Path(repro.__file__).parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_root if not existing
                         else src_root + os.pathsep + existing)
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout, env=env)
    except subprocess.TimeoutExpired:
        return [Diagnostic(
            "NYX066", "checkpoint verifier timed out after %.0fs "
            "(epoch %d, until-execs %d)" % (timeout, epoch, until_execs),
            file=where)]
    if proc.returncode != 0:
        tail = (proc.stderr or proc.stdout or "").strip().splitlines()
        return [Diagnostic(
            "NYX066", "checkpoint verifier exited %d (epoch %d): %s"
            % (proc.returncode, epoch, tail[-1] if tail else "no output"),
            file=where)]
    try:
        report = json.loads(proc.stdout.strip().splitlines()[-1])
    except (ValueError, IndexError):
        return [Diagnostic(
            "NYX066", "checkpoint verifier produced undecodable output "
            "(epoch %d)" % epoch, file=where)]
    diags: List[Diagnostic] = []
    for entry in report.get("fixpoint", [])[:_MAX_PATHS]:
        diags.append(Diagnostic(
            "NYX065",
            "%s restore is not a fixpoint at %s: %s -> %s"
            % (kind, entry["path"], entry["before"], entry["after"]),
            file=where))
    if report.get("stats_checksum") != expected_checksum:
        diags.append(Diagnostic(
            "NYX066",
            "checkpoint divergence (epoch %d): child stats_checksum %s "
            "!= parent %s at %d execs"
            % (epoch, report.get("stats_checksum"), expected_checksum,
               until_execs), file=where))
    delta = _digest_delta(expected_digest, report.get("digest", {}))
    for path, before, after in delta[:_MAX_PATHS]:
        diags.append(Diagnostic(
            "NYX066",
            "checkpoint divergence (epoch %d) at %s: parent %s, "
            "re-stepped child %s" % (epoch, path, before, after),
            file=where))
    if len(delta) > _MAX_PATHS:
        diags.append(Diagnostic(
            "NYX066",
            "checkpoint divergence (epoch %d): %d further diverged "
            "paths elided" % (epoch, len(delta) - _MAX_PATHS), file=where))
    return diags


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
