"""Selective network emulation (the paper's LD_PRELOAD agent, §3.3/§4.1).

The :class:`~repro.emu.interceptor.Interceptor` hooks the guest
kernel's socket syscalls, tracks which file descriptors belong to the
external attack surface (across ``fork``/``dup``/fd-passing), feeds
fuzzer-generated packets to ``recv``/``read`` on those descriptors,
emulates ``select``/``poll``/``epoll`` readiness according to the input
bytecode, and swallows responses — so a test case usually runs without
touching the (simulated) real network path at all.
"""

from repro.emu.surface import AttackSurface, SurfaceMode
from repro.emu.interceptor import Interceptor

__all__ = ["AttackSurface", "SurfaceMode", "Interceptor"]
