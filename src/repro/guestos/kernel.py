"""The guest kernel: processes, syscalls, sockets, scheduling.

All mutable kernel state is split into *components* (processes,
sockets, epoll instances, pipes, the filesystem, global tables), each
serialized into its own guest-memory region by :meth:`Kernel.flush_to_memory`.
Restoring a VM snapshot rewinds those pages; :meth:`Kernel.reload_from_memory`
then rebuilds the host-side object graph from memory, making snapshot
restores *semantically real*: a test case's socket state, forked
children, uploaded files and program variables all genuinely roll back.

The syscall surface (:class:`KernelApi`) covers the ~30 libc calls the
paper's LD_PRELOAD agent hooks (§4.1): socket/bind/listen/accept/
connect/recv/recvfrom/send/sendto/read/write/close/dup/dup2/shutdown,
select/poll/epoll, pipe, fork (as ``fork_child``), open/unlink and
friends.  An installed :class:`~repro.emu.interceptor.Interceptor` can
observe or override the network-facing subset.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.guestos.epoll import EPOLLIN, EpollEvent, EpollInstance
from repro.guestos.errors import (CrashReport, Errno, GuestCrash, GuestError)
from repro.guestos.fds import FdEntry, FdKind
from repro.guestos.fs import FileSystem
from repro.guestos.process import Process, Program
from repro.guestos.sockets import (EXTERNAL_PEER, Address, Socket, SockDomain,
                                   SockState, SockType)
from repro.vm.hypercall import Hypercall
from repro.vm.machine import Machine
from repro.vm.memory import Region

#: Pages reserved for the component directory blob.
DIRECTORY_PAGES = 64

#: Extra headroom factor when (re)allocating a component region, so
#: growing state does not reallocate on every flush.
REGION_SLACK = 2.0


@dataclass
class KernelGlobals:  # nyx: state[memory]
    """Global kernel tables (one serializable component)."""

    next_pid: int = 1
    next_sid: int = 1
    next_eid: int = 1
    next_pipe: int = 1
    tcp_bindings: Dict[int, int] = field(default_factory=dict)
    udp_bindings: Dict[int, int] = field(default_factory=dict)
    unix_bindings: Dict[str, int] = field(default_factory=dict)


@dataclass
class Pipe:  # nyx: state[memory]
    """An anonymous pipe: byte chunks from write end to read end."""

    pipe_id: int
    chunks: List[bytes] = field(default_factory=list)
    readers: int = 1
    writers: int = 1


class ExternalConn:
    """Host-side handle to a connection whose other end is the fuzzer.

    Used by the AFLNet-style baselines that talk to the target through
    the (simulated) real network stack.  After a snapshot restore the
    guest-side socket may be gone; operations then raise ECONNRESET and
    the harness reconnects, exactly like a real fuzzer would.
    """

    def __init__(self, kernel: "Kernel", sid: int, addr: Address,
                 dgram: bool = False) -> None:
        self._kernel = kernel
        self.sid = sid
        self.addr = addr
        self.dgram = dgram

    def send(self, data: bytes) -> None:
        self._kernel.external_deliver(self.sid, data, source=self.addr,
                                      dgram=self.dgram)

    def recv(self) -> List[bytes]:
        """Drain everything the guest has sent on this connection."""
        return self._kernel.external_drain(self.sid)

    def close(self) -> None:
        self._kernel.external_close(self.sid)


class Kernel:
    """The guest kernel, attached to one :class:`Machine`."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.g = KernelGlobals()
        self.processes: Dict[int, Process] = {}
        self.sockets: Dict[int, Socket] = {}
        self.epolls: Dict[int, EpollInstance] = {}
        self.pipes: Dict[int, Pipe] = {}
        self.fs = FileSystem()
        # Drained by the executor after every run; crash reports must
        # outlive the snapshot reset that follows the crashing exec.
        self.crash_reports: List[CrashReport] = []  # nyx: allow[reset]
        # Host-side debug log (append-only diagnostics, never read by
        # guest code or coverage).
        self.log: List[str] = []  # nyx: allow[reset]
        #: Installed network interceptor (Nyx-Net emulation layer).
        self.interceptor: Optional[Any] = None
        #: Executor watchdog: when set, :meth:`run` stops scheduling new
        #: rounds once it returns True (per-exec budget exceeded).
        self.watchdog: Optional[Callable[[], bool]] = None
        #: Optional coverage collector wrapping program execution.
        self.coverage: Optional[Any] = None
        #: Host-side outboxes for data sent to external peers.
        self._outbox: Dict[int, List[bytes]] = {}
        #: Ports where the *fuzzer* acts as a server (client fuzzing).
        #: Boot-time harness configuration, registered before the root
        #: snapshot and constant for the campaign.
        self.external_servers: Dict[Address, bool] = {}  # nyx: allow[reset]
        #: Whether externally delivered stream data coalesces (real TCP).
        self.coalesce_external: bool = True
        # Monotonic progress counter consumed via deltas (idle
        # detection); absolute value is meaningless by design.
        self._activity = 0  # nyx: allow[reset]
        self._touched: set = set()

        # Memory-backed state directory.
        self._directory_region: Region = machine.allocator.alloc(
            DIRECTORY_PAGES * 4096)
        self._regions: Dict[str, Tuple[int, int]] = {}
        self._blob_cache: Dict[str, bytes] = {}
        # Bump pointer the cached "_directory" blob was pickled with;
        # -1 forces the first flush to write a directory.
        self._dir_bump: int = -1
        # Host-side syscall-interface cache; a KernelApi is a pure
        # (kernel, pid) binding, so one instance serves every round.
        self._api_cache: Dict[int, "KernelApi"] = {}  # nyx: allow[reset]
        machine.on_restore(self.reload_from_memory)

    # ------------------------------------------------------------------
    # component serialization
    # ------------------------------------------------------------------

    def _components(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"globals": self.g, "fs": self.fs}
        for pid, proc in self.processes.items():
            out["proc:%d" % pid] = proc
        for sid, sock in self.sockets.items():
            out["sock:%d" % sid] = sock
        for eid, ep in self.epolls.items():
            out["epoll:%d" % eid] = ep
        for pipe_id, pipe in self.pipes.items():
            out["pipe:%d" % pipe_id] = pipe
        return out

    def touch(self, key: str) -> None:
        """Mark a component as possibly modified since the last flush."""
        self._touched.add(key)

    def flush_to_memory(self, full: bool = False) -> None:  # nyx: hot
        """Serialize (changed) components into their memory regions.

        Called at test-case boundaries and before snapshots so that the
        dirty-page log reflects the guest state churn of the test.
        """
        components = self._components()
        keys = set(components) if full else set(self._touched) & set(components)
        # Components that disappeared since the last flush.
        removed = [k for k in self._regions if k not in components]
        allocator = self.machine.allocator
        changed_any = bool(removed)
        layout_changed = bool(removed)
        for key in sorted(keys):
            blob = pickle.dumps(components[key], protocol=pickle.HIGHEST_PROTOCOL)
            if self._blob_cache.get(key) == blob:
                continue
            region_info = self._regions.get(key)
            need = len(blob) + 8
            if region_info is None or region_info[1] * 4096 < need:
                region = allocator.alloc(int(need * REGION_SLACK))
                self._regions[key] = (region.start_page, region.num_pages)
                layout_changed = True
            else:
                region = Region(*region_info)
            allocator.write_blob(region, blob)
            self._blob_cache[key] = blob
            changed_any = True
        for key in removed:
            del self._regions[key]
            self._blob_cache.pop(key, None)
        self._touched.clear()
        if changed_any or full:
            # The directory pickles the region table plus the bump
            # pointer; in steady state neither moves between flushes
            # (regions are reused, nothing allocates), so the previous
            # directory blob is provably still current and re-pickling
            # it would only reproduce the cached bytes.
            bump = allocator.state()
            if (layout_changed or bump != self._dir_bump
                    or "_directory" not in self._blob_cache):
                directory = {"regions": self._regions, "bump": bump}
                dir_blob = pickle.dumps(directory,
                                        protocol=pickle.HIGHEST_PROTOCOL)
                if self._blob_cache.get("_directory") != dir_blob:
                    allocator.write_blob(
                        Region(self._directory_region.start_page,
                               self._directory_region.num_pages), dir_blob)
                    self._blob_cache["_directory"] = dir_blob
                self._dir_bump = bump

    def reload_from_memory(self) -> None:  # nyx: hot
        """Rebuild host-side kernel objects from guest memory.

        Components whose restored blob is byte-identical to the last
        flushed blob *and* that were not touched since that flush are
        reused as-is: by the flush contract the host object already
        equals the serialized state, so unpickling would only rebuild
        an identical graph.  (A component touched since its last flush
        may have drifted host-side and is always rebuilt.)
        """
        allocator = self.machine.allocator
        old_cache = self._blob_cache
        touched = self._touched
        # Pages the restore that triggered this reload actually rewrote
        # (None = unknown, e.g. a freshly adopted shared root).  When
        # the state directory itself is byte-unchanged, a region none
        # of whose pages were rewritten provably still holds the bytes
        # the cache recorded — no read, no compare needed.  The same
        # argument applies to the directory region itself: if the
        # restore rewrote none of its pages, the cached directory blob
        # is still what memory holds, so reading and unpickling it
        # would only rebuild the current region table.
        reset_pages = self.machine.snapshots.last_reset_pages
        dir_region = self._directory_region
        blob = None
        if reset_pages is not None and "_directory" in old_cache:
            for page in range(dir_region.start_page,
                              dir_region.start_page + dir_region.num_pages):
                if page in reset_pages:
                    break
            else:
                blob = old_cache["_directory"]
                allocator.set_state(self._dir_bump)
        if blob is None:
            blob = allocator.read_blob(dir_region)
            if blob == old_cache.get("_directory"):
                allocator.set_state(self._dir_bump)
            else:
                directory = pickle.loads(blob)
                allocator.set_state(directory["bump"])
                self._regions = dict(directory["regions"])
                self._dir_bump = directory["bump"]
        old = self._components()
        unchanged_layout = (reset_pages is not None
                            and old_cache.get("_directory") == blob)
        self.processes = {}
        self.sockets = {}
        self.epolls = {}
        self.pipes = {}
        self._blob_cache = {"_directory": blob}
        for key, (start, npages) in self._regions.items():
            obj = comp_blob = None
            if key not in touched:
                # set.isdisjoint(range) is one C-level probe sweep; a
                # genexp here would allocate a frame per component on
                # every reset (hot-lint NYX074).
                if unchanged_layout and reset_pages.isdisjoint(
                        range(start, start + npages)):
                    comp_blob = old_cache.get(key)
                    if comp_blob is not None:
                        obj = old.get(key)
                if obj is None:
                    comp_blob = allocator.read_blob(Region(start, npages))
                    if old_cache.get(key) == comp_blob:
                        obj = old.get(key)
            if comp_blob is None:
                comp_blob = allocator.read_blob(Region(start, npages))
            if obj is None:
                obj = pickle.loads(comp_blob)
            self._blob_cache[key] = comp_blob
            if key == "globals":
                self.g = obj
            elif key == "fs":
                self.fs = obj
            elif key.startswith("proc:"):
                self.processes[int(key[5:])] = obj
            elif key.startswith("sock:"):
                self.sockets[int(key[5:])] = obj
            elif key.startswith("epoll:"):
                self.epolls[int(key[6:])] = obj
            elif key.startswith("pipe:"):
                self.pipes[int(key[5:])] = obj
        self._touched.clear()
        # Data queued for external peers belongs to the execution that
        # produced it; a restore rolls that execution back, so keeping
        # *any* of it (even for sockets that survive the restore, e.g.
        # a boot-time client connection that sent before the fuzzer
        # bound it) would leak phantom bytes across resets.  Harnesses
        # that read the outbox (baselines) drain it before resetting.
        self._outbox = {}

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------

    def spawn(self, program: Program, ppid: int = 0) -> Process:
        """Create a process; its on_start runs on the next scheduling round."""
        pid = self.g.next_pid
        self.g.next_pid += 1
        proc = Process(pid=pid, ppid=ppid, program=program)
        if program.timer_period is not None:
            proc.timer_deadline = self.machine.clock.now + program.timer_period
        self.processes[pid] = proc
        self.touch("globals")
        self.touch("proc:%d" % pid)
        return proc

    def fork_child(self, parent: Process, program: Program) -> Process:
        """fork()-per-connection: child inherits a clone of the fd table."""
        child = self.spawn(program, ppid=parent.pid)
        child.fdtable = parent.fdtable.clone()
        for entry in child.fdtable.entries.values():
            self._ref_object(entry)
        self.machine.clock.charge(
            self.machine.costs.fork_fixed
            + self.machine.costs.fork_per_page * len(child.fdtable))
        self._activity += 1
        return child

    def exit_process(self, proc: Process, code: int) -> None:
        """Terminate a process, closing all of its descriptors."""
        if not proc.alive:
            return
        proc.alive = False
        proc.exit_code = code
        api = KernelApi(self, proc.pid)
        for fd in list(proc.fdtable.entries):
            # Best-effort close: one stuck descriptor must not leak
            # the rest of the table, so each close isolates its fault.
            try:  # nyx: allow[NYX074]
                api._close_fd(proc, fd)
            except GuestError:
                pass
        self.touch("proc:%d" % proc.pid)

    def api_for(self, pid: int) -> "KernelApi":
        """The syscall interface bound to process ``pid``."""
        api = self._api_cache.get(pid)
        if api is None:
            api = self._api_cache[pid] = KernelApi(self, pid)
        return api

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def run(self, max_rounds: int = 64) -> int:  # nyx: hot
        """Poll processes until the guest is quiescent.

        Returns the number of productive syscalls performed.  A round
        with no productive syscalls ends the loop, which models "the
        target blocked waiting for more input".
        """
        total = 0
        for _ in range(max_rounds):
            if self.watchdog is not None and self.watchdog():
                break
            before = self._activity
            self._fire_timers()
            for pid in sorted(self.processes):
                proc = self.processes.get(pid)
                if proc is None or not proc.alive:
                    continue
                self._step(proc)
            made = self._activity - before
            total += made
            if made == 0:
                break
        return total

    def _step(self, proc: Process) -> None:
        api = self.api_for(proc.pid)
        self._touched.add("proc:%d" % proc.pid)
        try:
            if not proc.started:
                proc.started = True
                self._activity += 1
                self._run_program(proc, proc.program.on_start, api)
            self._run_program(proc, proc.program.poll, api)
        except GuestCrash as crash:
            self._record_crash(proc, crash)
        except GuestError as err:
            # An unhandled syscall error terminates the process, the
            # way an uncaught exception kills a real server worker.
            self.log.append("pid %d died on %s" % (proc.pid, err))
            self.exit_process(proc, int(err.errno))

    def _run_program(self, proc: Process, fn: Callable, api: "KernelApi") -> None:
        if self.coverage is not None:
            self.coverage.run(fn, api)
        else:
            fn(api)

    def _fire_timers(self) -> None:
        now = self.machine.clock.now
        # Fast scan first: most rounds have no due timer, and the
        # common case should not pay for the mutation-safe list copy.
        for proc in self.processes.values():
            if (proc.alive and proc.timer_deadline is not None
                    and now >= proc.timer_deadline):
                break
        else:
            return
        for proc in list(self.processes.values()):
            if not proc.alive or proc.timer_deadline is None:
                continue
            if now >= proc.timer_deadline:
                period = proc.program.timer_period or 1.0
                proc.timer_deadline = now + period
                self.touch("proc:%d" % proc.pid)
                self._activity += 1
                # Per-process fault isolation: one timer handler
                # crashing must not starve the other processes' timers.
                try:  # nyx: allow[NYX074]
                    self._run_program(proc, proc.program.on_timer,
                                      self.api_for(proc.pid))
                except GuestCrash as crash:
                    self._record_crash(proc, crash)
                except GuestError as err:
                    self.log.append("pid %d timer died on %s" % (proc.pid, err))
                    self.exit_process(proc, int(err.errno))

    def _record_crash(self, proc: Process, crash: GuestCrash) -> None:
        report = CrashReport(kind=crash.kind, bug_id=crash.bug_id,
                             pid=proc.pid, detail=crash.detail)
        self.crash_reports.append(report)
        proc.crashed = True
        proc.alive = False
        proc.exit_code = -11
        self.touch("proc:%d" % proc.pid)
        self.machine.hypercall(Hypercall.PANIC, report=report)

    # ------------------------------------------------------------------
    # socket internals
    # ------------------------------------------------------------------

    def new_socket(self, domain: SockDomain, type_: SockType) -> Socket:
        sid = self.g.next_sid
        self.g.next_sid += 1
        sock = Socket(sid=sid, domain=domain, type=type_, refcount=0)
        self.sockets[sid] = sock
        self.touch("globals")
        self.touch("sock:%d" % sid)
        return sock

    def sock(self, sid: int) -> Socket:
        sock = self.sockets.get(sid)
        if sock is None:
            raise GuestError(Errno.EBADF, "socket %d gone" % sid)
        return sock

    def _ref_object(self, entry: FdEntry) -> None:
        if entry.kind is FdKind.SOCKET:
            self.sock(entry.obj_id).refcount += 1
            self.touch("sock:%d" % entry.obj_id)
        elif entry.kind is FdKind.PIPE_R:
            self.pipes[entry.obj_id].readers += 1
            self.touch("pipe:%d" % entry.obj_id)
        elif entry.kind is FdKind.PIPE_W:
            self.pipes[entry.obj_id].writers += 1
            self.touch("pipe:%d" % entry.obj_id)

    def _unref_socket(self, sid: int) -> None:
        sock = self.sock(sid)
        sock.refcount -= 1
        self.touch("sock:%d" % sid)
        if sock.refcount > 0:
            return
        # Last reference gone: tear the socket down.
        if sock.state is SockState.LISTENING:
            self._unbind(sock)
            for pending_sid in list(sock.accept_queue):
                pending = self.sockets.get(pending_sid)
                if pending is not None:
                    pending.peer_closed = True
                    self._unref_socket(pending_sid)  # drop the queue ref
            sock.accept_queue.clear()
        if sock.peer not in (None, EXTERNAL_PEER):
            peer = self.sockets.get(sock.peer)
            if peer is not None:
                peer.peer_closed = True
                self.touch("sock:%d" % peer.sid)
        if sock.bound_addr is not None:
            self._unbind(sock)
        sock.state = SockState.CLOSED
        del self.sockets[sock.sid]
        self._outbox.pop(sock.sid, None)
        if self.interceptor is not None:
            self.interceptor.on_socket_closed(sock.sid)

    def _unbind(self, sock: Socket) -> None:
        for table in (self.g.tcp_bindings, self.g.udp_bindings):
            for addr, sid in list(table.items()):
                if sid == sock.sid:
                    del table[addr]
                    self.touch("globals")
        for path, sid in list(self.g.unix_bindings.items()):
            if sid == sock.sid:
                del self.g.unix_bindings[path]
                self.touch("globals")

    def _binding_table(self, domain: SockDomain, type_: SockType) -> Dict:
        if domain is SockDomain.UNIX:
            return self.g.unix_bindings
        if type_ is SockType.DGRAM:
            return self.g.udp_bindings
        return self.g.tcp_bindings

    def socket_readable(self, sid: int) -> bool:
        """Base readiness; the interceptor may override for surface fds."""
        sock = self.sockets.get(sid)
        if sock is None:
            return False
        if self.interceptor is not None:
            verdict = self.interceptor.readable_override(sid)
            if verdict is not None:
                return verdict
        return sock.readable()

    # ------------------------------------------------------------------
    # external (host <-> guest) networking
    # ------------------------------------------------------------------

    def external_connect(self, addr: Address,
                         dgram: bool = False) -> ExternalConn:
        """The fuzzer connects to a listening guest socket.

        Charges the real-network connection cost and enqueues a new
        connected socket in the listener's accept queue.
        """
        table = self.g.udp_bindings if dgram else (
            self.g.unix_bindings if isinstance(addr, str) else self.g.tcp_bindings)
        listener_sid = table.get(addr)
        if listener_sid is None:
            raise GuestError(Errno.ECONNREFUSED, "no listener on %r" % (addr,))
        listener = self.sock(listener_sid)
        self.machine.clock.charge(self.machine.costs.net_connect)
        self.machine.devices.nic.on_rx(0)
        if dgram or listener.type is SockType.DGRAM:
            # Datagram "connections" are just the bound socket itself.
            return ExternalConn(self, listener_sid, addr, dgram=True)
        if listener.state is not SockState.LISTENING:
            raise GuestError(Errno.ECONNREFUSED, "socket not listening")
        if len(listener.accept_queue) >= max(listener.backlog, 1):
            raise GuestError(Errno.ECONNREFUSED, "backlog full")
        conn = self.new_socket(listener.domain, SockType.STREAM)
        conn.state = SockState.CONNECTED
        conn.peer = EXTERNAL_PEER
        conn.refcount = 1  # held alive until accepted and installed
        listener.accept_queue.append(conn.sid)
        self.touch("sock:%d" % listener.sid)
        self._activity += 1
        return ExternalConn(self, conn.sid, addr)

    def external_deliver(self, sid: int, data: bytes,
                         source: Optional[Address] = None,
                         dgram: bool = False) -> None:
        """Deliver fuzzer data to a guest socket via the real path."""
        sock = self.sockets.get(sid)
        if sock is None or sock.state is SockState.CLOSED:
            raise GuestError(Errno.ECONNRESET, "guest socket %d gone" % sid)
        self.machine.clock.charge(
            self.machine.costs.packet_cost(len(data), emulated=False))
        self.machine.devices.nic.on_rx(len(data))
        sock.deliver(data, source=source,
                     coalesce=self.coalesce_external and not dgram)
        self.touch("sock:%d" % sid)
        self._activity += 1

    def external_drain(self, sid: int) -> List[bytes]:
        """Collect everything the guest sent to the external peer."""
        return self._outbox.pop(sid, [])

    def external_close(self, sid: int) -> None:
        sock = self.sockets.get(sid)
        if sock is None:
            return
        sock.peer_closed = True
        self.touch("sock:%d" % sid)
        self._activity += 1

    def register_external_server(self, addr: Address) -> None:
        """Declare that the fuzzer will accept guest connect()s to addr
        (client-fuzzing mode, §5.4)."""
        self.external_servers[addr] = True

    def outbox_for(self, sid: int) -> List[bytes]:
        return self._outbox.setdefault(sid, [])


# ----------------------------------------------------------------------
# The syscall interface
# ----------------------------------------------------------------------


class KernelApi:  # nyx: hot
    """Syscalls bound to one process.  This is the surface the paper's
    LD_PRELOAD agent intercepts."""

    def __init__(self, kernel: Kernel, pid: int) -> None:
        self.k = kernel
        self.pid = pid
        # Hot-path bindings: the machine's clock and cost model are
        # fixed for the kernel's lifetime, so every syscall entry can
        # charge its context switch through two attribute loads and one
        # call instead of walking kernel -> machine -> clock/costs.
        # Syscall entries bump the clock directly: the context switch
        # cost is a fixed non-negative float, so charge()'s validation
        # is statically satisfied and the call fan-out can go.
        self._clock = kernel.machine.clock
        self._ctx_cost = kernel.machine.costs.context_switch

    # -- plumbing -----------------------------------------------------------

    @property
    def proc(self) -> Process:
        proc = self.k.processes.get(self.pid)
        if proc is None:
            raise GuestError(Errno.EPERM, "process %d gone" % self.pid)
        return proc

    def _enter(self) -> None:
        self._clock._now += self._ctx_cost

    def _sock_for_fd(self, fd: int) -> Socket:
        entry = self.proc.fdtable.get(fd)
        if entry.kind is not FdKind.SOCKET:
            raise GuestError(Errno.ENOTSOCK, "fd %d is not a socket" % fd)
        return self.k.sock(entry.obj_id)

    def cpu(self, seconds: float) -> None:
        """Charge target CPU work (parsing, crypto, rendering)."""
        self.k.machine.clock.charge(seconds)

    def log(self, message: str) -> None:
        """Write a line to the serial console."""
        self.k.machine.devices.serial.write(message.encode() + b"\n")

    def getpid(self) -> int:
        return self.pid

    def ijon_set(self, slot: int) -> None:
        """IJON state annotation: expose a program state value to the
        coverage bitmap (compiled in by IJON's pass; a no-op when no
        coverage collector is attached)."""
        coverage = self.k.coverage
        if coverage is not None and hasattr(coverage, "ijon_set"):
            coverage.ijon_set(int(slot))

    def time(self) -> float:
        """Guest-visible wall time (from the RTC device)."""
        self._enter()
        return self.k.machine.devices.rtc.epoch_us / 1e6

    def sleep(self, seconds: float) -> None:
        """Blocking sleep — advances simulated time."""
        self._enter()
        self.k.machine.clock.charge(seconds)
        self.k.machine.devices.rtc.advance(int(seconds * 1e6))

    # -- sockets --------------------------------------------------------------

    def socket(self, domain: SockDomain = SockDomain.INET,
               type_: SockType = SockType.STREAM) -> int:
        self._enter()
        sock = self.k.new_socket(domain, type_)
        fd = self.proc.fdtable.install(FdEntry(FdKind.SOCKET, sock.sid))
        sock.refcount += 1
        self.k._activity += 1
        if self.k.interceptor is not None:
            self.k.interceptor.on_socket(self.pid, fd, sock)
        return fd

    def bind(self, fd: int, addr: Address) -> None:
        self._enter()
        sock = self._sock_for_fd(fd)
        table = self.k._binding_table(sock.domain, sock.type)
        if addr in table:
            raise GuestError(Errno.EADDRINUSE, repr(addr))
        table[addr] = sock.sid
        sock.bound_addr = addr
        sock.state = SockState.BOUND
        self.k.touch("globals")
        self.k.touch("sock:%d" % sock.sid)
        self.k._activity += 1
        if self.k.interceptor is not None:
            self.k.interceptor.on_bind(self.pid, fd, sock, addr)

    def listen(self, fd: int, backlog: int = 16) -> None:
        self._enter()
        sock = self._sock_for_fd(fd)
        if sock.bound_addr is None:
            raise GuestError(Errno.EINVAL, "listen on unbound socket")
        sock.state = SockState.LISTENING
        sock.backlog = backlog
        self.k.touch("sock:%d" % sock.sid)
        self.k._activity += 1
        if self.k.interceptor is not None:
            self.k.interceptor.on_listen(self.pid, fd, sock)

    def accept(self, fd: int) -> int:
        # Hottest syscall of the accept-loop idiom: fd resolution is
        # inlined (``_sock_for_fd`` spelled out) because most attempts
        # end in EAGAIN and the call fan-out dominates.
        self._clock._now += self._ctx_cost
        k = self.k
        proc = k.processes.get(self.pid)
        if proc is None:
            raise GuestError(Errno.EPERM, "process %d gone" % self.pid)
        entry = proc.fdtable.entries.get(fd)
        if entry is None:
            raise GuestError(Errno.EBADF, "fd %d is not open" % fd)
        if entry.kind is not FdKind.SOCKET:
            raise GuestError(Errno.ENOTSOCK, "fd %d is not a socket" % fd)
        listener = k.sockets.get(entry.obj_id)
        if listener is None:
            raise GuestError(Errno.EBADF, "socket %d gone" % entry.obj_id)
        if listener.state is not SockState.LISTENING:
            raise GuestError(Errno.EINVAL, "accept on non-listening socket")
        if not listener.accept_queue:
            raise GuestError(Errno.EAGAIN, "no pending connections")
        if (k.interceptor is not None
                and k.interceptor.accept_delay_override(listener.sid)):
            # Injected fault: the connection is parked but its
            # readiness lags one poll round (see repro.faults).
            raise GuestError(Errno.EAGAIN, "injected fault: delayed readiness")
        conn_sid = listener.accept_queue.pop(0)
        conn = k.sock(conn_sid)
        new_fd = proc.fdtable.install(FdEntry(FdKind.SOCKET, conn_sid))
        # The accept-queue reference is handed over to the new fd, so
        # the refcount is unchanged by design.
        k._touched.add("sock:%d" % listener.sid)
        k._touched.add("sock:%d" % conn_sid)
        k._activity += 1
        if k.interceptor is not None:
            k.interceptor.on_accept(self.pid, new_fd, conn, listener)
        return new_fd

    def connect(self, fd: int, addr: Address) -> None:
        self._enter()
        sock = self._sock_for_fd(fd)
        if sock.state is SockState.CONNECTED:
            raise GuestError(Errno.EISCONN)
        if sock.type is SockType.DGRAM:
            # Datagram connect() just records a default destination.
            sock.dgram_dest = addr
            sock.state = SockState.CONNECTED
            self.k.touch("sock:%d" % sock.sid)
            self.k._activity += 1
            if self.k.interceptor is not None:
                self.k.interceptor.on_connect(self.pid, fd, sock, addr)
            return
        table = self.k._binding_table(sock.domain, sock.type)
        listener_sid = table.get(addr)
        if listener_sid is not None:
            listener = self.k.sock(listener_sid)
            if listener.state is not SockState.LISTENING:
                raise GuestError(Errno.ECONNREFUSED, repr(addr))
            peer = self.k.new_socket(sock.domain, SockType.STREAM)
            peer.state = SockState.CONNECTED
            peer.peer = sock.sid
            peer.refcount = 1  # held by the accept queue until accepted
            sock.peer = peer.sid
            sock.state = SockState.CONNECTED
            listener.accept_queue.append(peer.sid)
            self.k.touch("sock:%d" % listener.sid)
        elif addr in self.k.external_servers:
            sock.peer = EXTERNAL_PEER
            sock.state = SockState.CONNECTED
            self.k.machine.clock.charge(self.k.machine.costs.net_connect)
        elif self.k.interceptor is not None and \
                self.k.interceptor.claims_connect(addr):
            # The emulation layer plays the server (client fuzzing,
            # §5.4): the connect succeeds without any real peer.
            sock.peer = EXTERNAL_PEER
            sock.state = SockState.CONNECTED
        else:
            raise GuestError(Errno.ECONNREFUSED, repr(addr))
        self.k.touch("sock:%d" % sock.sid)
        self.k._activity += 1
        if self.k.interceptor is not None:
            self.k.interceptor.on_connect(self.pid, fd, sock, addr)

    def recv(self, fd: int, max_bytes: int = 65536) -> bytes:
        # Duplicates :meth:`recvfrom` rather than delegating: recv is
        # the single hottest syscall and the extra call would land
        # inside the coverage trace window.
        self._clock._now += self._ctx_cost
        k = self.k
        proc = k.processes.get(self.pid)
        if proc is None:
            raise GuestError(Errno.EPERM, "process %d gone" % self.pid)
        entry = proc.fdtable.entries.get(fd)
        if entry is None:
            raise GuestError(Errno.EBADF, "fd %d is not open" % fd)
        if entry.kind is not FdKind.SOCKET:
            raise GuestError(Errno.ENOTSOCK, "fd %d is not a socket" % fd)
        sock = k.sockets.get(entry.obj_id)
        if sock is None:
            raise GuestError(Errno.EBADF, "socket %d gone" % entry.obj_id)
        if sock.state is SockState.LISTENING:
            raise GuestError(Errno.EINVAL, "recv on listening socket")
        if k.interceptor is not None:
            supplied = k.interceptor.on_recv(self.pid, fd, sock, max_bytes)
            if supplied is not None:
                k._activity += 1
                sock.bytes_in += len(supplied[0])
                k._touched.add("sock:%d" % sock.sid)
                return supplied[0]
        data, _source = sock.take_chunk(max_bytes)
        k._touched.add("sock:%d" % sock.sid)
        if data:
            k._activity += 1
        return data

    def recvfrom(self, fd: int, max_bytes: int = 65536
                 ) -> Tuple[bytes, Optional[Address]]:
        # Hot read loop: targets recv until EAGAIN, so fd resolution is
        # inlined like in :meth:`accept`.
        self._clock._now += self._ctx_cost
        k = self.k
        proc = k.processes.get(self.pid)
        if proc is None:
            raise GuestError(Errno.EPERM, "process %d gone" % self.pid)
        entry = proc.fdtable.entries.get(fd)
        if entry is None:
            raise GuestError(Errno.EBADF, "fd %d is not open" % fd)
        if entry.kind is not FdKind.SOCKET:
            raise GuestError(Errno.ENOTSOCK, "fd %d is not a socket" % fd)
        sock = k.sockets.get(entry.obj_id)
        if sock is None:
            raise GuestError(Errno.EBADF, "socket %d gone" % entry.obj_id)
        if sock.state is SockState.LISTENING:
            raise GuestError(Errno.EINVAL, "recv on listening socket")
        if k.interceptor is not None:
            supplied = k.interceptor.on_recv(self.pid, fd, sock, max_bytes)
            if supplied is not None:
                k._activity += 1
                sock.bytes_in += len(supplied[0])
                k._touched.add("sock:%d" % sock.sid)
                return supplied
        data, source = sock.take_chunk(max_bytes)
        k._touched.add("sock:%d" % sock.sid)
        if data:
            k._activity += 1
        return data, source

    def send(self, fd: int, data: bytes) -> int:
        # Reply path of every serviced request; inlined like accept.
        self._clock._now += self._ctx_cost
        k = self.k
        proc = k.processes.get(self.pid)
        if proc is None:
            raise GuestError(Errno.EPERM, "process %d gone" % self.pid)
        entry = proc.fdtable.entries.get(fd)
        if entry is None:
            raise GuestError(Errno.EBADF, "fd %d is not open" % fd)
        if entry.kind is not FdKind.SOCKET:
            raise GuestError(Errno.ENOTSOCK, "fd %d is not a socket" % fd)
        sock = k.sockets.get(entry.obj_id)
        if sock is None:
            raise GuestError(Errno.EBADF, "socket %d gone" % entry.obj_id)
        if sock.type is SockType.DGRAM:
            # The agent hooks send() before the kernel can object: on
            # hooked datagram sockets replies are swallowed like any
            # other surface traffic.
            if self.k.interceptor is not None and \
                    self.k.interceptor.on_send(self.pid, fd, sock, data):
                sock.bytes_out += len(data)
                self.k._activity += 1
                return len(data)
            if sock.dgram_dest is None:
                raise GuestError(Errno.ENOTCONN, "datagram socket has no default dest")
            return self.sendto(fd, data, sock.dgram_dest)
        if sock.state is not SockState.CONNECTED:
            raise GuestError(Errno.ENOTCONN)
        if sock.peer_closed:
            raise GuestError(Errno.EPIPE)
        sock.bytes_out += len(data)
        self.k.touch("sock:%d" % sock.sid)
        if self.k.interceptor is not None and \
                self.k.interceptor.on_send(self.pid, fd, sock, data):
            self.k._activity += 1
            return len(data)
        if sock.peer is EXTERNAL_PEER:
            self.k.machine.clock.charge(
                self.k.machine.costs.packet_cost(len(data), emulated=False))
            self.k.machine.devices.nic.on_tx(len(data))
            self.k.outbox_for(sock.sid).append(data)
        elif sock.peer is not None:
            peer = self.k.sock(sock.peer)
            peer.deliver(data)
            self.k.touch("sock:%d" % peer.sid)
        else:
            raise GuestError(Errno.ENOTCONN)
        self.k._activity += 1
        return len(data)

    def sendto(self, fd: int, data: bytes, addr: Address) -> int:
        self._enter()
        sock = self._sock_for_fd(fd)
        if sock.type is not SockType.DGRAM:
            raise GuestError(Errno.EINVAL, "sendto on stream socket")
        sock.bytes_out += len(data)
        self.k.touch("sock:%d" % sock.sid)
        if self.k.interceptor is not None and \
                self.k.interceptor.on_send(self.pid, fd, sock, data):
            self.k._activity += 1
            return len(data)
        table = self.k.g.udp_bindings
        dest_sid = table.get(addr)
        if dest_sid is not None:
            dest = self.k.sock(dest_sid)
            dest.deliver(data, source=sock.bound_addr)
            self.k.touch("sock:%d" % dest.sid)
        else:
            self.k.machine.clock.charge(
                self.k.machine.costs.packet_cost(len(data), emulated=False))
            self.k.machine.devices.nic.on_tx(len(data))
            self.k.outbox_for(sock.sid).append(data)
        self.k._activity += 1
        return len(data)

    def shutdown(self, fd: int) -> None:
        self._enter()
        sock = self._sock_for_fd(fd)
        sock.state = SockState.SHUTDOWN
        if sock.peer not in (None, EXTERNAL_PEER):
            peer = self.k.sockets.get(sock.peer)
            if peer is not None:
                peer.peer_closed = True
                self.k.touch("sock:%d" % peer.sid)
        self.k.touch("sock:%d" % sock.sid)
        self.k._activity += 1

    # -- generic fd ops ----------------------------------------------------------

    def read(self, fd: int, max_bytes: int = 65536) -> bytes:
        """read() is recv() for sockets, buffered read for files/pipes."""
        entry = self.proc.fdtable.get(fd)
        if entry.kind is FdKind.SOCKET:
            return self.recv(fd, max_bytes)
        self._enter()
        if entry.kind is FdKind.PIPE_R:
            pipe = self.k.pipes[entry.obj_id]
            if not pipe.chunks:
                if pipe.writers <= 0:
                    return b""
                raise GuestError(Errno.EAGAIN, "pipe empty")
            data = pipe.chunks.pop(0)[:max_bytes]
            self.k.touch("pipe:%d" % pipe.pipe_id)
            self.k._activity += 1
            return data
        if entry.kind is FdKind.FILE:
            # obj_id indexes into a per-process open-file name table via env.
            path = self.proc.env.get("file:%d" % fd)
            if path is None:
                raise GuestError(Errno.EBADF)
            content = self.k.fs.read_file(self.k.machine.disk, path)
            data = content[entry.offset:entry.offset + max_bytes]
            entry.offset += len(data)
            self.k._activity += 1
            return data
        raise GuestError(Errno.EBADF, "unreadable fd kind %s" % entry.kind)

    def write(self, fd: int, data: bytes) -> int:
        entry = self.proc.fdtable.get(fd)
        if entry.kind is FdKind.SOCKET:
            return self.send(fd, data)
        self._enter()
        if entry.kind is FdKind.PIPE_W:
            pipe = self.k.pipes[entry.obj_id]
            if pipe.readers <= 0:
                raise GuestError(Errno.EPIPE)
            pipe.chunks.append(data)
            self.k.touch("pipe:%d" % pipe.pipe_id)
            self.k._activity += 1
            return len(data)
        if entry.kind is FdKind.FILE:
            path = self.proc.env.get("file:%d" % fd)
            if path is None:
                raise GuestError(Errno.EBADF)
            self.k.fs.write_file(self.k.machine.disk, path, data, append=True)
            self.k.touch("fs")
            self.k._activity += 1
            return len(data)
        raise GuestError(Errno.EBADF, "unwritable fd kind %s" % entry.kind)

    def close(self, fd: int) -> None:
        self._enter()
        self._close_fd(self.proc, fd)
        self.k._activity += 1
        if self.k.interceptor is not None:
            self.k.interceptor.on_close(self.pid, fd)

    def _close_fd(self, proc: Process, fd: int) -> None:
        entry = proc.fdtable.remove(fd)
        self.k.touch("proc:%d" % proc.pid)
        if entry.kind is FdKind.SOCKET:
            self.k._unref_socket(entry.obj_id)
        elif entry.kind is FdKind.PIPE_R:
            pipe = self.k.pipes.get(entry.obj_id)
            if pipe is not None:
                pipe.readers -= 1
                self.k.touch("pipe:%d" % pipe.pipe_id)
                if pipe.readers <= 0 and pipe.writers <= 0:
                    del self.k.pipes[pipe.pipe_id]
        elif entry.kind is FdKind.PIPE_W:
            pipe = self.k.pipes.get(entry.obj_id)
            if pipe is not None:
                pipe.writers -= 1
                self.k.touch("pipe:%d" % pipe.pipe_id)
                if pipe.readers <= 0 and pipe.writers <= 0:
                    del self.k.pipes[pipe.pipe_id]
        elif entry.kind is FdKind.EPOLL:
            self.k.epolls.pop(entry.obj_id, None)
        proc.env.pop("file:%d" % fd, None)

    def dup(self, fd: int) -> int:
        self._enter()
        entry = self.proc.fdtable.get(fd)
        clone = FdEntry(entry.kind, entry.obj_id, entry.offset, entry.flags)
        new_fd = self.proc.fdtable.install(clone)
        self.k._ref_object(clone)
        self.k.touch("proc:%d" % self.pid)
        self.k._activity += 1
        if self.k.interceptor is not None:
            self.k.interceptor.on_dup(self.pid, fd, new_fd)
        return new_fd

    def dup2(self, fd: int, new_fd: int) -> int:
        self._enter()
        entry = self.proc.fdtable.get(fd)
        if new_fd in self.proc.fdtable.entries:
            self._close_fd(self.proc, new_fd)
        clone = FdEntry(entry.kind, entry.obj_id, entry.offset, entry.flags)
        self.proc.fdtable.install_at(new_fd, clone)
        self.k._ref_object(clone)
        self.k.touch("proc:%d" % self.pid)
        self.k._activity += 1
        if self.k.interceptor is not None:
            self.k.interceptor.on_dup(self.pid, fd, new_fd)
        return new_fd

    # -- readiness ---------------------------------------------------------------

    def _fd_readable(self, fd: int) -> bool:
        entry = self.proc.fdtable.entries.get(fd)
        if entry is None:
            return False
        if entry.kind is FdKind.SOCKET:
            return self.k.socket_readable(entry.obj_id)
        if entry.kind is FdKind.PIPE_R:
            pipe = self.k.pipes.get(entry.obj_id)
            return bool(pipe and (pipe.chunks or pipe.writers <= 0))
        if entry.kind is FdKind.FILE:
            return True
        return False

    def select(self, read_fds: List[int]) -> List[int]:
        self._enter()
        return [fd for fd in read_fds if self._fd_readable(fd)]

    def poll_fds(self, fds: List[int]) -> List[int]:
        """poll(2): same readiness semantics as select here."""
        return self.select(fds)

    def epoll_create(self) -> int:
        self._enter()
        eid = self.k.g.next_eid
        self.k.g.next_eid += 1
        self.k.epolls[eid] = EpollInstance(eid)
        self.k.touch("globals")
        self.k.touch("epoll:%d" % eid)
        fd = self.proc.fdtable.install(FdEntry(FdKind.EPOLL, eid))
        self.k._activity += 1
        return fd

    def _epoll_for_fd(self, epfd: int) -> EpollInstance:
        entry = self.proc.fdtable.get(epfd)
        if entry.kind is not FdKind.EPOLL:
            raise GuestError(Errno.EINVAL, "fd %d is not an epoll fd" % epfd)
        return self.k.epolls[entry.obj_id]

    def epoll_ctl_add(self, epfd: int, fd: int, events: int = EPOLLIN,
                      data: int = 0) -> None:
        self._enter()
        self._epoll_for_fd(epfd).ctl_add(fd, events, data)
        self.k.touch("epoll:%d" % self._epoll_for_fd(epfd).eid)

    def epoll_ctl_del(self, epfd: int, fd: int) -> None:
        self._enter()
        ep = self._epoll_for_fd(epfd)
        ep.ctl_del(fd)
        self.k.touch("epoll:%d" % ep.eid)

    def epoll_wait(self, epfd: int, max_events: int = 64) -> List[EpollEvent]:
        self._enter()
        ep = self._epoll_for_fd(epfd)
        events = []
        for fd in ep.watched_fds():
            if (ep.interest.get(fd, 0) & EPOLLIN) and self._fd_readable(fd):
                events.append(EpollEvent(fd, EPOLLIN, ep.userdata.get(fd, 0)))
                if len(events) >= max_events:
                    break
        return events

    # -- pipes & processes ----------------------------------------------------

    def pipe(self) -> Tuple[int, int]:
        self._enter()
        pipe_id = self.k.g.next_pipe
        self.k.g.next_pipe += 1
        self.k.pipes[pipe_id] = Pipe(pipe_id, readers=0, writers=0)
        self.k.touch("globals")
        r = self.proc.fdtable.install(FdEntry(FdKind.PIPE_R, pipe_id))
        w = self.proc.fdtable.install(FdEntry(FdKind.PIPE_W, pipe_id))
        self.k.pipes[pipe_id].readers = 1
        self.k.pipes[pipe_id].writers = 1
        self.k.touch("pipe:%d" % pipe_id)
        self.k._activity += 1
        return r, w

    def fork_child(self, program: Program) -> int:
        """Spawn a connection-handler child inheriting this fd table."""
        self._enter()
        child = self.k.fork_child(self.proc, program)
        if self.k.interceptor is not None:
            self.k.interceptor.on_fork(self.pid, child.pid)
        return child.pid

    def exit(self, code: int = 0) -> None:
        self._enter()
        self.k.exit_process(self.proc, code)

    # -- filesystem -------------------------------------------------------------

    def open(self, path: str, create: bool = False) -> int:
        self._enter()
        if not self.k.fs.exists(path):
            if not create:
                raise GuestError(Errno.ENOENT, path)
            self.k.fs.create(path)
            self.k.touch("fs")
        fd = self.proc.fdtable.install(FdEntry(FdKind.FILE, 0))
        self.proc.env["file:%d" % fd] = path
        self.k.touch("proc:%d" % self.pid)
        self.k._activity += 1
        return fd

    def unlink(self, path: str) -> None:
        self._enter()
        self.k.fs.unlink(path)
        self.k.touch("fs")
        self.k._activity += 1

    def file_exists(self, path: str) -> bool:
        self._enter()
        return self.k.fs.exists(path)

    def read_whole_file(self, path: str) -> bytes:
        self._enter()
        return self.k.fs.read_file(self.k.machine.disk, path)

    def write_whole_file(self, path: str, data: bytes) -> None:
        self._enter()
        self.k.fs.write_file(self.k.machine.disk, path, data, append=False)
        self.k.touch("fs")
        self.k._activity += 1
