"""Chain-aware fuzzing tests: bandit placement, executor integration,
the depth-1 identity, and the chain bench scenario/gate.

The load-bearing property here is the last one in ISSUE terms: with
``max_chain_depth`` left at 1 a campaign must be byte-identical to a
build that never heard of chains — every chain feature hides behind
the depth knob.
"""

import pytest

from repro.fuzz.input import packets_input
from repro.fuzz.policies import (BanditPolicy, MIN_PACKETS_FOR_SNAPSHOT,
                                 make_policy)
from repro.fuzz.queue import QueueEntry
from repro.sim.rng import DeterministicRandom


def _entry(num_packets):
    entry = QueueEntry(0, packets_input([b"x"] * num_packets))
    entry.effective_packets = num_packets
    return entry


class TestBanditPlacement:
    def test_factory_knows_bandit(self):
        assert make_policy("bandit").name == "bandit"

    def test_choose_chain_spacing(self):
        policy = BanditPolicy()
        points = policy.choose_chain(_entry(22), DeterministicRandom(0), 4)
        assert points == sorted(set(points))
        assert len(points) == 4
        assert points[-1] == 20  # n - 2: the aggressive policy's anchor

    def test_choose_chain_clamps_to_packets(self):
        policy = BanditPolicy()
        points = policy.choose_chain(_entry(5), DeterministicRandom(0), 8)
        assert points[-1] == 3
        assert len(points) == len(set(points))
        assert len(points) <= 4

    def test_choose_chain_short_input_uses_root(self):
        policy = BanditPolicy()
        entry = _entry(MIN_PACKETS_FOR_SNAPSHOT - 1)
        assert policy.choose_chain(entry, DeterministicRandom(0), 4) == []

    def test_depth_one_gives_single_deepest_point(self):
        policy = BanditPolicy()
        points = policy.choose_chain(_entry(22), DeterministicRandom(0), 1)
        assert points == [20]


class TestBanditScheduling:
    def test_unexplored_arms_first_deepest_preferred(self):
        policy = BanditPolicy()
        entry = _entry(22)
        rng = DeterministicRandom(0)
        assert policy.pick_arm(entry, rng, 3) == 3
        policy.arm_feedback(entry, 3, False, sim_cost=0.001)
        assert policy.pick_arm(entry, rng, 3) == 2
        policy.arm_feedback(entry, 2, False, sim_cost=0.002)
        assert policy.pick_arm(entry, rng, 3) == 1

    def test_throughput_prior_prefers_cheap_arm(self):
        # No rewards anywhere: the bandit must concentrate on the arm
        # whose suffix runs are sim-cheapest (the deep resume).
        policy = BanditPolicy()
        entry = _entry(22)
        rng = DeterministicRandom(0)
        for arm, cost in ((1, 0.01), (2, 0.003), (3, 0.0005)):
            for _ in range(3):
                policy.arm_feedback(entry, arm, False, sim_cost=cost)
        assert policy.pick_arm(entry, rng, 3) == 3

    def test_reward_can_outweigh_prior(self):
        # A shallow arm that keeps finding coverage beats a cheap but
        # fruitless deep arm once its reward rate dominates.
        policy = BanditPolicy()
        entry = _entry(22)
        rng = DeterministicRandom(0)
        for _ in range(20):
            policy.arm_feedback(entry, 3, False, sim_cost=0.0005)
            policy.arm_feedback(entry, 2, False, sim_cost=0.003)
            policy.arm_feedback(entry, 1, True, sim_cost=0.01)
        assert policy.pick_arm(entry, rng, 3) == 1

    def test_arm_feedback_accumulates(self):
        policy = BanditPolicy()
        entry = _entry(22)
        policy.arm_feedback(entry, 2, True, sim_cost=0.5)
        policy.arm_feedback(entry, 2, False, sim_cost=0.25)
        assert entry.arm_pulls == {2: 2}
        assert entry.arm_cost == {2: 0.75}
        assert entry.arm_reward == {2: pytest.approx(1.0 / 1.5)}

    def test_pre_cost_checkpoint_entries_heal(self):
        # Entries restored from a checkpoint written before cost
        # tracking existed have pulls/rewards but no cost dict.
        policy = BanditPolicy()
        entry = _entry(22)
        entry.arm_pulls = {1: 4}
        entry.arm_reward = {1: 0.5}
        entry.arm_cost = None
        policy.arm_feedback(entry, 1, False, sim_cost=0.1)
        assert entry.arm_cost == {1: 0.1}
        rng = DeterministicRandom(0)
        assert policy.pick_arm(entry, rng, 1) == 1


def _campaign_stats(policy="aggressive", seed=3, execs=150,
                    target="lighttpd", seeds=None, **kwargs):
    from repro.fuzz.campaign import build_campaign
    from repro.targets import PROFILES
    handles = build_campaign(PROFILES[target], policy=policy, seed=seed,
                             time_budget=1e9, max_execs=execs,
                             seeds=seeds, **kwargs)
    stats = handles.fuzzer.run_campaign()
    return stats, handles


class TestChainCampaigns:
    def test_depth_one_is_byte_identical_to_default(self):
        """--max-chain-depth 1 must not perturb the sim trajectory."""
        from repro.perf.macro import stats_checksum
        plain, _h = _campaign_stats()
        clamped, _h = _campaign_stats(max_chain_depth=1)
        assert stats_checksum(plain) == stats_checksum(clamped)

    def test_bandit_campaign_exercises_chains(self):
        from repro.perf.macro import deep_session_input
        stats, handles = _campaign_stats(
            policy="bandit", seed=1, execs=120, target="lightftp",
            seeds=[deep_session_input()], max_chain_depth=3)
        assert stats.chain_pushes > 0
        assert stats.chain_restores > 0
        assert 2 <= stats.chain_deepest <= 3
        snap = handles.machine.snapshots.stats
        assert snap.corruption_detected == 0

    def test_commit_at_cap_bounds_chain_length(self):
        from repro.perf.macro import deep_session_input
        stats, handles = _campaign_stats(
            policy="bandit", seed=1, execs=120, target="lightftp",
            seeds=[deep_session_input()], max_chain_depth=2)
        assert stats.chain_deepest <= 2
        assert handles.fuzzer.executor.chain_node_count <= 2

    def test_fault_injected_chain_campaign_survives(self):
        # Regression: injected snapshot corruption during a mid-run
        # chain hop (run_suffix's restore_to_depth) used to escape the
        # heal/rebuild/degrade ladder and abort the campaign.
        from repro.perf.macro import deep_session_input
        stats, handles = _campaign_stats(
            policy="bandit", seed=0, execs=200, target="lightftp",
            seeds=[deep_session_input()], max_chain_depth=3,
            fault_rate=0.1, exec_timeout=0.05)
        assert stats.execs == 200
        assert handles.machine.snapshots.stats.corruption_detected > 0
        assert handles.fuzzer.executor.snapshot_rebuilds > 0

    def test_chain_counters_stay_out_of_sim_view(self):
        stats, _h = _campaign_stats(max_chain_depth=1)
        assert "chain_pushes" not in stats.as_dict()
        assert "chain_pushes" in stats.host_counters()


class TestChainBench:
    def test_chain_macro_payload_shape(self):
        from repro.perf.macro import run_chain_macro
        payload = run_chain_macro(execs=40)
        assert payload["kind"] == "chain_macro"
        assert payload["session_packets"] == 22
        assert payload["ref"]["policy"] == "balanced"
        assert payload["chain"]["policy"] == "bandit"
        assert payload["chain"]["max_chain_depth"] == payload["depth"]
        assert payload["chain_speedup"] > 0
        assert payload["chain"]["host_counters"]["chain_restores"] > 0

    def test_chain_macro_is_deterministic_on_sim_clock(self):
        from repro.perf.macro import run_chain_macro
        a = run_chain_macro(execs=40)
        b = run_chain_macro(execs=40)
        for leg in ("ref", "chain"):
            assert a[leg]["stats_checksum"] == b[leg]["stats_checksum"]
            assert a[leg]["sim_execs_per_sec"] == b[leg]["sim_execs_per_sec"]

    def _payload(self, **overrides):
        base = {
            "kind": "chain_macro", "target": "lightftp", "seed": 1,
            "execs": 600, "depth": 4, "chain_speedup": 1.7,
            "host": {"python": "3.12", "platform": "test"},
            "ref": {"sim_execs_per_sec": 800.0, "final_edges": 216,
                    "stats_checksum": "aaaa"},
            "chain": {"sim_execs_per_sec": 1400.0, "final_edges": 213,
                      "stats_checksum": "bbbb"},
        }
        base.update(overrides)
        return base

    def test_compare_chain_clean_pass(self):
        from repro.perf.report import Comparison, compare_chain
        out = Comparison()
        compare_chain(self._payload(), self._payload(), 20.0, out)
        assert out.ok

    def test_compare_chain_checksum_mismatch_is_hard(self):
        from repro.perf.report import Comparison, compare_chain
        out = Comparison()
        current = self._payload()
        current["chain"] = dict(current["chain"], stats_checksum="cccc")
        compare_chain(current, self._payload(), 20.0, out)
        assert not out.ok
        assert any("checksum" in line for line in out.regressions)

    def test_compare_chain_config_mismatch_skips_sim(self):
        from repro.perf.report import Comparison, compare_chain
        out = Comparison()
        current = self._payload(execs=300)
        current["chain"] = dict(current["chain"], stats_checksum="cccc")
        compare_chain(current, self._payload(), 20.0, out)
        assert out.ok  # sim gates skipped, nothing regresses

    def test_compare_chain_speedup_gated_on_same_host_only(self):
        from repro.perf.report import Comparison, compare_chain
        out = Comparison()
        compare_chain(self._payload(chain_speedup=1.0),
                      self._payload(), 20.0, out)
        assert not out.ok
        out = Comparison()
        other = self._payload(chain_speedup=1.0,
                              host={"python": "3.12", "platform": "other"})
        compare_chain(other, self._payload(), 20.0, out)
        assert out.ok
        assert not out.wall_gated

    def test_baseline_bundles_chain_section(self):
        from repro.perf.report import compare_reports, make_baseline
        baseline = make_baseline(None, None, self._payload())
        assert "chain" in baseline
        out = compare_reports(None, None, baseline, 20.0,
                              chain=self._payload())
        assert out.ok
