"""Durability lint (NYX06x) and runtime checkpoint verifier tests.

Static half: ``repro.analysis.durlint`` audits every snapshot/restore
pair for capture completeness, key asymmetry, golden-inventory drift,
non-deterministic serialization and unregistered journal frames.
Runtime half: ``repro.analysis.statediff`` proves restore is a digest
fixpoint and that a fresh process restoring a checkpoint and
re-stepping lands on the parent's exact state.  An injected
uncaptured-attribute regression must be caught by BOTH halves with the
exact attribute path.
"""

import json
import pathlib
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.diagnostics import (FAMILIES, RULES, Report,
                                        validate_registry)
from repro.analysis.durlint import (analyze_durability_source,
                                    analyze_durability_tree,
                                    durability_fixit_stubs,
                                    state_inventory)
from repro.analysis.statediff import (_child_report, fixpoint_check,
                                      state_digest, verify_checkpoint)
from repro.cli import main as cli_main
from repro.fuzz.campaign import (build_campaign_from_manifest,
                                 build_parallel_campaign_from_manifest)
from repro.fuzz.journal import (CheckpointStore, DurableCampaign,
                                FRAME_KINDS, Journal, campaign_manifest)
from repro.fuzz.stats import CampaignStats
from repro.perf.macro import stats_checksum
from repro.targets import PROFILES

GOLDEN = pathlib.Path(__file__).parent / "golden"
REPO_SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def assert_matches_golden(name, text):
    assert text == (GOLDEN / name).read_text()


def lint(source, handled=None):
    return analyze_durability_source("mod.py", source,
                                     handled_kinds=handled)


#: One of everything: an uncaptured mutable attribute (NYX060), a
#: captured-but-never-restored key and a restored-but-never-captured
#: key (NYX061), a raw set crossing pickle (NYX063), an unregistered
#: journal frame kind (NYX064), plus an ephemeral-marked cache that
#: must stay quiet.
FIXTURE = '''\
class Tracker:
    def __init__(self):
        self.count = 0
        self.seen = set()
        self.cache = {}  # nyx: state[ephemeral] rebuilt on first use

    def bump(self, x):
        self.count += 1
        self.seen.add(x)
        self.cache[x] = 1
        self.lost = x

    def snapshot_state(self):
        return {
            "count": self.count,
            "seen": self.seen,
            "extra": 1,
        }

    def restore_state(self, state):
        self.count = state["count"]
        self.seen = set(state["seen"])
        self.stray = state["stray"]


def journal_demo(journal):
    journal.append("mystery", {})
'''


class TestRegistry:
    def test_repo_registry_is_valid(self):
        validate_registry()  # must not raise

    def test_nyx06x_family_is_registered(self):
        rng, module = FAMILIES["durability lint"]
        assert rng == (60, 69)
        assert module == "repro.analysis.durlint"
        for code in ("NYX060", "NYX061", "NYX062", "NYX063", "NYX064",
                     "NYX065", "NYX066"):
            assert code in RULES

    def test_duplicate_code_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_registry(rules=["NYX060", "NYX060"])

    def test_overlapping_family_ranges_rejected(self):
        bad = {"a": ((0, 9), "m.a"), "b": ((5, 15), "m.b")}
        with pytest.raises(ValueError, match="overlap"):
            validate_registry(rules=[], families=bad)

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            validate_registry(rules=[], families={"a": ((9, 0), "m.a")})

    def test_malformed_code_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            validate_registry(rules=["NYX06"])
        with pytest.raises(ValueError, match="malformed"):
            validate_registry(rules=["ABC123"])

    def test_code_outside_every_family_rejected(self):
        with pytest.raises(ValueError, match="no registered family"):
            validate_registry(rules=["NYX099"])


class TestDurLint:
    def test_fixture_findings(self):
        diags = lint(FIXTURE)
        assert [d.code for d in diags] == [
            "NYX060", "NYX063", "NYX061", "NYX061", "NYX064"]

    def test_uncaptured_attribute_names_exact_path(self):
        found = [d for d in lint(FIXTURE) if d.code == "NYX060"]
        assert len(found) == 1
        assert "Tracker.lost" in found[0].message
        assert found[0].fixable

    def test_asymmetry_names_both_directions(self):
        msgs = [d.message for d in lint(FIXTURE) if d.code == "NYX061"]
        assert any("'extra'" in m and "never reads it" in m for m in msgs)
        assert any("'stray'" in m and "never captures it" in m
                   for m in msgs)

    def test_raw_set_capture_is_nyx063(self):
        found = [d for d in lint(FIXTURE) if d.code == "NYX063"]
        assert len(found) == 1 and "'seen'" in found[0].message
        assert found[0].fixable

    def test_sorted_capture_is_clean(self):
        fixed = FIXTURE.replace('"seen": self.seen,',
                                '"seen": sorted(self.seen),')
        assert not [d for d in lint(fixed) if d.code == "NYX063"]

    def test_ephemeral_marker_suppresses_nyx060(self):
        assert not [d for d in lint(FIXTURE) if "cache" in d.message]
        unmarked = FIXTURE.replace(
            "  # nyx: state[ephemeral] rebuilt on first use", "")
        assert [d for d in lint(unmarked)
                if d.code == "NYX060" and "cache" in d.message]

    def test_class_line_allow_suppresses_the_family(self):
        allowed = FIXTURE.replace(
            "class Tracker:",
            "class Tracker:  # nyx: allow[NYX06x] test fixture")
        codes = {d.code for d in lint(allowed)}
        assert codes == {"NYX064"}  # module-level audit is separate

    def test_single_code_allow_leaves_other_rules(self):
        allowed = FIXTURE.replace(
            '"extra": 1,', '"extra": 1,  # nyx: allow[NYX061] handshake')
        diags = lint(allowed)
        msgs = [d.message for d in diags if d.code == "NYX061"]
        assert not any("'extra'" in m for m in msgs)
        assert any("'stray'" in m for m in msgs)
        assert any(d.code == "NYX060" for d in diags)

    def test_registered_frame_kind_is_clean(self):
        assert not [d for d in lint(FIXTURE, handled={"mystery"})
                    if d.code == "NYX064"]

    def test_own_module_registry_is_honoured(self):
        source = 'FRAME_KINDS = {"mystery": "demo"}\n\n' + FIXTURE
        assert not [d for d in lint(source) if d.code == "NYX064"]
        assert [d for d in lint(source + '\n\ndef f(j):\n'
                                '    j.journal.append("other", {})\n')
                if d.code == "NYX064"]

    def test_cross_module_registry_union(self, tmp_path):
        (tmp_path / "reg.py").write_text(
            'FRAME_KINDS = {"mystery": "handled in reg"}\n')
        (tmp_path / "emit.py").write_text(
            'def f(journal):\n    journal.append("mystery", {})\n')
        diags = analyze_durability_tree(str(tmp_path),
                                        golden="/nonexistent.json")
        assert not [d for d in diags if d.code == "NYX064"]

    def test_parse_error_is_nyx045(self):
        diags = lint("def broken(:\n")
        assert [d.code for d in diags] == ["NYX045"]
        assert "durability" in diags[0].message

    def test_golden(self):
        report = Report()
        report.extend(lint(FIXTURE))
        assert_matches_golden("durlint.txt", report.format_text() + "\n")

    def test_fixit_stubs(self, tmp_path):
        (tmp_path / "mod.py").write_text(FIXTURE)
        stubs = durability_fixit_stubs(str(tmp_path))
        assert len(stubs) == 1
        (where, stub), = stubs.items()
        assert where.endswith("mod.py::Tracker")
        assert '"lost": self.lost,' in stub
        assert 'self.lost = state["lost"]' in stub

    def test_repo_tree_lints_clean(self):
        assert analyze_durability_tree(str(REPO_SRC)) == []


class TestStateInventory:
    def test_discovers_every_stateful_class(self):
        inventory = state_inventory(str(REPO_SRC))
        assert {"NyxNetFuzzer", "ParallelCampaign", "Corpus",
                "CrashDatabase", "CoverageMap", "NyxExecutor",
                "FaultInjector"} <= set(inventory)
        fuzzer = inventory["NyxNetFuzzer"]
        assert fuzzer["module"] == "fuzz/fuzzer.py"
        assert fuzzer["state_format"] == 3
        assert "sanitizer_findings" in fuzzer["keys"]

    def test_golden_matches_the_tree(self):
        committed = json.loads(
            (GOLDEN / "state_inventory.json").read_text())
        assert committed == state_inventory(str(REPO_SRC))

    @staticmethod
    def _tree(tmp_path, keys, state_format=1):
        body = "\n".join('            "%s": self.%s,' % (k, k)
                         for k in keys)
        restore = "\n".join('        self.%s = state["%s"]' % (k, k)
                            for k in keys)
        (tmp_path / "mod.py").write_text(
            "class Box:\n"
            "    STATE_FORMAT = %d\n"
            "    def snapshot_state(self):\n"
            "        return {\n%s\n        }\n"
            "    def restore_state(self, state):\n%s\n"
            % (state_format, body, restore))
        return str(tmp_path)

    @staticmethod
    def _golden_file(tmp_path, inventory):
        path = tmp_path / "golden.json"
        path.write_text(json.dumps(inventory))
        return str(path)

    def test_unchanged_inventory_is_clean(self, tmp_path):
        root = self._tree(tmp_path, ["a", "b"])
        golden = self._golden_file(tmp_path, state_inventory(root))
        assert analyze_durability_tree(root, golden=golden) == []

    def test_changed_keys_without_bump_is_a_hard_error(self, tmp_path):
        root = self._tree(tmp_path, ["a", "b"])
        golden = self._golden_file(tmp_path, state_inventory(root))
        self._tree(tmp_path, ["a", "b", "c"])
        diags = analyze_durability_tree(root, golden=golden)
        assert [d.code for d in diags] == ["NYX062"]
        assert "without a STATE_FORMAT bump" in diags[0].message
        assert "'c'" in diags[0].message
        assert not diags[0].fixable

    def test_bumped_format_asks_for_regeneration(self, tmp_path):
        root = self._tree(tmp_path, ["a", "b"])
        golden = self._golden_file(tmp_path, state_inventory(root))
        self._tree(tmp_path, ["a", "b", "c"], state_format=2)
        diags = analyze_durability_tree(root, golden=golden)
        assert [d.code for d in diags] == ["NYX062"]
        assert "regenerate the stale golden" in diags[0].message
        assert diags[0].fixable

    def test_new_class_is_fixable(self, tmp_path):
        root = self._tree(tmp_path, ["a"])
        golden = self._golden_file(tmp_path, {})
        diags = analyze_durability_tree(root, golden=golden)
        assert [d.code for d in diags] == ["NYX062"]
        assert "missing from the state inventory golden" in diags[0].message
        assert diags[0].fixable

    def test_removed_class_is_fixable(self, tmp_path):
        root = self._tree(tmp_path, ["a"])
        golden = self._golden_file(
            tmp_path, dict(state_inventory(root),
                           Gone={"module": "gone.py", "keys": ["x"],
                                 "state_format": 1}))
        diags = analyze_durability_tree(root, golden=golden)
        assert [d.code for d in diags] == ["NYX062"]
        assert "no longer in the tree" in diags[0].message

    def test_missing_golden_skips_the_check(self, tmp_path):
        root = self._tree(tmp_path, ["a"])
        assert analyze_durability_tree(
            root, golden=str(tmp_path / "nope.json")) == []


def _manifest(seed, **overrides):
    base = dict(policy="aggressive", seed=seed, time_budget=60.0,
                max_execs=300, checkpoint_every=100, fault_rate=0.05,
                exec_timeout=0.02)
    base.update(overrides)
    return campaign_manifest("single", "lighttpd", **base)


def _walk_stateful(root, objects):
    """Breadth-first walk of one live object graph collecting every
    instance that exposes a snapshot/restore pair."""
    seen = set()
    queue = [root]
    while queue:
        obj = queue.pop()
        if id(obj) in seen or isinstance(obj, type):
            continue
        seen.add(id(obj))
        if (hasattr(obj, "snapshot_state")
                or hasattr(obj, "durable_state")):
            objects.setdefault(type(obj).__name__, obj)
        try:
            children = list(vars(obj).values())
        except TypeError:
            continue
        for child in children:
            if isinstance(child, (list, tuple)):
                queue.extend(c for c in child if hasattr(c, "__dict__"))
            elif hasattr(child, "__dict__"):
                queue.append(child)


def _stateful_objects(seed):
    """Auto-discover every live object exposing a snapshot/restore
    pair, so new stateful classes are covered without editing this
    test (asserted against the lint's inventory below)."""
    handles = build_campaign_from_manifest(PROFILES["lighttpd"],
                                           _manifest(seed))
    fuzzer = handles.fuzzer
    fuzzer.begin_campaign()
    for _ in range(40):
        fuzzer.step()
    parallel_manifest = campaign_manifest(
        "parallel", "lighttpd", policy="balanced", seed=seed,
        time_budget=60.0, max_execs=120, checkpoint_every=100, workers=2)
    campaign = build_parallel_campaign_from_manifest(
        PROFILES["lighttpd"], parallel_manifest)
    campaign.run()
    objects = {}
    _walk_stateful(fuzzer, objects)
    _walk_stateful(campaign, objects)
    return objects


class TestFixpointProperty:
    def test_discovery_covers_the_lint_inventory(self):
        discovered = set(_stateful_objects(0))
        registered = set(state_inventory(str(REPO_SRC)))
        assert registered <= discovered, (
            "stateful classes the lint registers but this property "
            "never exercises: %s" % sorted(registered - discovered))

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_snapshot_restore_snapshot_is_byte_identical(self, seed):
        for name, obj in sorted(_stateful_objects(seed).items()):
            if hasattr(obj, "snapshot_state"):
                snapshot, restore = obj.snapshot_state, obj.restore_state
            else:
                snapshot = obj.durable_state
                restore = obj.restore_durable_state
            before = pickle.dumps(snapshot(), protocol=4)
            restore(pickle.loads(before))
            after = pickle.dumps(snapshot(), protocol=4)
            assert before == after, "%s restore is not a fixpoint" % name
            assert fixpoint_check(obj) == [], name


class TestStatediff:
    def test_digest_skips_host_counters(self):
        stats = CampaignStats()
        base, _ = state_digest(stats)
        stats.checkpoints_written = 7
        stats.checkpoint_verifications = 3
        again, _ = state_digest(stats)
        assert base == again

    def test_stats_checksum_ignores_host_counters(self):
        stats = CampaignStats()
        base = stats_checksum(stats)
        stats.checkpoints_written = 9
        stats.checkpoint_epochs_pruned = 4
        stats.checkpoint_verifications = 2
        stats.checkpoint_divergences = 1
        assert stats_checksum(stats) == base

    def test_fixpoint_violation_names_the_path(self):
        class Lossy:
            def __init__(self):
                self.items = [1, 2]

            def snapshot_state(self):
                return {"items": list(self.items)}

            def restore_state(self, state):
                self.items = list(state["items"])[:-1]  # drops one

        diags = fixpoint_check(Lossy())
        assert diags and all(d.code == "NYX065" for d in diags)
        assert any("items" in d.message for d in diags)

    @pytest.fixture(scope="class")
    def finished_campaign(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("vcamp")
        manifest = _manifest(3)
        durable = DurableCampaign(
            build_campaign_from_manifest(PROFILES["lighttpd"], manifest),
            directory, checkpoint_every=100, manifest=manifest,
            journal_sync=False)
        stats = durable.run()
        return directory, stats

    def test_clean_checkpoint_verifies_divergence_free(
            self, finished_campaign):
        directory, stats = finished_campaign
        truth = _child_report(str(directory), None, stats.execs)
        assert truth["fixpoint"] == []
        diags = verify_checkpoint(directory, truth["epoch"], stats.execs,
                                  truth["stats_checksum"], truth["digest"])
        assert diags == []

    def test_injected_regression_caught_with_exact_path(
            self, finished_campaign):
        directory, stats = finished_campaign
        truth = _child_report(str(directory), None, stats.execs)
        diags = verify_checkpoint(directory, truth["epoch"], stats.execs,
                                  truth["stats_checksum"], truth["digest"],
                                  inject="corpus._cursor")
        assert any(d.code == "NYX066"
                   and "state['corpus']['cursor']" in d.message
                   for d in diags)

    def test_injected_regression_caught_statically(self):
        # The same regression class, seen by the other prong: an
        # attribute mutated after __init__ that never travels.
        diags = lint(FIXTURE)
        assert any(d.code == "NYX060" and "Tracker.lost" in d.message
                   for d in diags)

    def test_verification_runs_inside_a_durable_campaign(self, tmp_path):
        manifest = _manifest(4, verify_checkpoints=100)
        durable = DurableCampaign(
            build_campaign_from_manifest(PROFILES["lighttpd"], manifest),
            tmp_path, checkpoint_every=100, manifest=manifest,
            journal_sync=False, verify_every=100)
        stats = durable.run()
        assert stats.checkpoint_verifications >= 1
        assert stats.checkpoint_divergences == 0
        assert durable.verify_findings == []
        kinds = [kind for kind, _body in
                 Journal(tmp_path / "journal.wal", sync=False).records]
        assert "verify" in kinds

    def test_manifest_records_the_cadence(self):
        manifest = _manifest(0, verify_checkpoints=250)
        assert manifest["verify_checkpoints"] == 250
        assert _manifest(0)["verify_checkpoints"] is None


class TestCheckpointStoreDurability:
    def test_prune_counts_and_fsyncs_the_directory(self, tmp_path,
                                                   monkeypatch):
        import repro.fuzz.journal as journal_mod
        synced = []
        monkeypatch.setattr(journal_mod, "_fsync_dir",
                            lambda d: synced.append(pathlib.Path(d)))
        store = CheckpointStore(tmp_path / "ckpt", keep=2)
        for n in range(4):
            store.save({"n": n})
        assert store.epochs() == [3, 4]
        assert store.pruned_total == 2
        assert synced and all(p == tmp_path / "ckpt" for p in synced)

    def test_pruned_epochs_surface_in_stats(self, tmp_path):
        manifest = _manifest(5, max_execs=400, checkpoint_every=50)
        durable = DurableCampaign(
            build_campaign_from_manifest(PROFILES["lighttpd"], manifest),
            tmp_path, checkpoint_every=50, manifest=manifest,
            journal_sync=False)
        stats = durable.run()
        assert stats.checkpoints_written >= 4
        assert stats.checkpoint_epochs_pruned > 0
        assert stats.checkpoints_written == (
            stats.checkpoint_epochs_pruned
            + len(durable.checkpoints.epochs()))

    def test_unregistered_frame_kind_rejected(self, tmp_path):
        journal = Journal(tmp_path / "journal.wal", sync=False)
        with pytest.raises(ValueError, match="NYX064"):
            journal.append("bogus", {})
        for kind in FRAME_KINDS:
            journal.append(kind, {})
        journal.close()


class TestAnalyzeCLI:
    def test_multi_prong_merged_report(self, tmp_path):
        out = tmp_path / "report.json"
        rc = cli_main(["analyze", "--spec", "--self", "src/repro",
                       "--reset", "src/repro", "--durability", "src/repro",
                       "--json", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        meta = data["meta"]
        assert meta["self_root"] == "src/repro"
        assert meta["reset_root"] == "src/repro"
        assert meta["durability_root"] == "src/repro"
        assert "spec" in meta

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(FIXTURE)
        rc = cli_main(["analyze", "--durability", str(tmp_path)])
        assert rc == 1
        assert "NYX060" in capsys.readouterr().out

    def test_exit_two_on_usage_error(self, tmp_path, capsys):
        rc = cli_main(["analyze", "--durability",
                       str(tmp_path / "missing")])
        assert rc == 2
        assert "not a directory" in capsys.readouterr().err

    def test_fix_prints_stubs(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(FIXTURE)
        rc = cli_main(["analyze", "--durability", str(tmp_path), "--fix"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "fix-it for" in out and '"lost": self.lost,' in out

    def test_fuzz_verify_needs_checkpointing(self, capsys):
        rc = cli_main(["fuzz", "lighttpd", "--verify-checkpoints"])
        assert rc == 2
        assert "--checkpoint-every" in capsys.readouterr().err
