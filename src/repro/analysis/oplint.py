"""Op-sequence dataflow lint (NYX01x): abstract interpretation.

Runs the affine type system *tolerantly* over an op sequence —
recording violations as diagnostics instead of raising — and then a
liveness pass over the surviving ops:

* **dead outputs** (NYX010): values produced but never borrowed or
  consumed.  When the producing op is a *pure producer* (no operands,
  no data fields) the whole op is removable: executing it only burns
  simulated time.
* **unobservable tail ops** (NYX011): pure producers after the last
  attack-surface write.  Nothing the target could observe happens
  after them, so they can never contribute coverage the prefix did
  not already reach.
* **snapshot marker placement** (NYX012): leading, trailing or
  duplicated markers (which ``validate`` rejects outright) and
  multiple interior markers (legal, but only the last one matters —
  the earlier snapshots are created and immediately overwritten).
* **affine violations** (NYX013): bad refs, wrong edge types, double
  consumes, arity mismatches — what mutation can introduce into an
  otherwise well-formed entry.
* **no attack-surface write at all** (NYX014): the entry delivers no
  payload bytes; an execution of it is pure reset overhead.

Refs are interpreted against the *authored* value numbering — every
op's outputs occupy indices whether the op itself type-checks or not —
which is exactly how :func:`repro.analysis.fixes.repair_ops` rebuilds
sequences, so a finding here maps one-to-one onto a repair there.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.spec.bytecode import Op
from repro.spec.nodes import Spec, SpecError


def _payload_bytes(op: Op) -> bool:
    return any(isinstance(a, (bytes, bytearray)) for a in op.args)


def analyze_ops(spec: Spec, ops: Sequence[Op],
                file: Optional[str] = None) -> List[Diagnostic]:
    """Lint one op sequence; returns diagnostics (empty = clean)."""
    diags: List[Diagnostic] = []

    def bad(code: str, index: int, message: str, fixable: bool = True,
            severity=None) -> None:
        diags.append(Diagnostic(code, message, severity=severity, file=file,
                                op_index=index, fixable=fixable))

    # -- tolerant affine interpretation (NYX013) ----------------------------
    values: List[str] = []     # edge name, authored numbering
    value_ok: List[bool] = []  # produced by a well-typed op?
    consumed: set = set()
    uses: dict = {}            # value index -> borrowing/consuming op count
    op_ok = [False] * len(ops)
    for index, op in enumerate(ops):
        if op.is_snapshot_marker():
            if op.refs or op.args:
                bad("NYX013", index, "snapshot marker carries operands")
            continue
        try:
            node = spec.node_by_name(op.node)
        except SpecError:
            bad("NYX013", index, "unknown node type %r" % op.node)
            continue
        expected = list(node.borrows) + list(node.consumes)
        ok = True
        if len(op.refs) != len(expected):
            bad("NYX013", index, "%s: %d operand refs, expected %d"
                % (op.node, len(op.refs), len(expected)))
            ok = False
        if len(op.args) != len(node.data):
            bad("NYX013", index, "%s: %d data args, expected %d"
                % (op.node, len(op.args), len(node.data)))
            ok = False
        if ok:
            for ref, edge in zip(op.refs, expected):
                if not 0 <= ref < len(values):
                    bad("NYX013", index, "%s: ref %d out of range"
                        % (op.node, ref))
                    ok = False
                elif not value_ok[ref]:
                    bad("NYX013", index, "%s: ref %d points at the output "
                        "of an ill-typed op" % (op.node, ref))
                    ok = False
                elif values[ref] != edge.name:
                    bad("NYX013", index, "%s: ref %d has type %s, expected "
                        "%s" % (op.node, ref, values[ref], edge.name))
                    ok = False
                elif ref in consumed:
                    bad("NYX013", index, "%s: ref %d already consumed "
                        "(affine violation)" % (op.node, ref))
                    ok = False
        if ok:
            op_ok[index] = True
            for ref in op.refs:
                uses[ref] = uses.get(ref, 0) + 1
            for ref in op.refs[len(node.borrows):]:
                consumed.add(ref)
        # Outputs occupy value slots either way: later refs were
        # authored against a numbering that includes this op.
        for edge in node.outputs:
            values.append(edge.name)
            value_ok.append(ok)

    # -- liveness over the well-typed ops (NYX010/NYX011/NYX014) ------------
    surface = [i for i, op in enumerate(ops) if op_ok[i]
               and (_payload_bytes(op)
                    or _consumes_count(spec, op))]
    last_surface = surface[-1] if surface else -1
    cursor = 0
    for index, op in enumerate(ops):
        if op.is_snapshot_marker():
            continue
        try:
            node = spec.node_by_name(op.node)
        except SpecError:
            continue
        out_slots = range(cursor, cursor + len(node.outputs))
        cursor += len(node.outputs)
        if not op_ok[index] or not node.outputs:
            continue
        if any(uses.get(slot, 0) for slot in out_slots):
            continue
        pure_producer = not op.refs and not op.args
        if pure_producer and index > last_surface:
            bad("NYX011", index, "%s after the last attack-surface write; "
                "its output is never used" % op.node)
        elif pure_producer:
            bad("NYX010", index, "%s produces %s but nothing uses it"
                % (op.node, "/".join(e.name for e in node.outputs)))
        else:
            bad("NYX010", index, "%s output(s) %s are never used"
                % (op.node, "/".join(e.name for e in node.outputs)),
                fixable=False)
    if not any(_payload_bytes(op) for i, op in enumerate(ops) if op_ok[i]):
        diags.append(Diagnostic(
            "NYX014", "no op delivers payload bytes to the attack surface",
            file=file, fixable=False))

    # -- snapshot markers (NYX012) ------------------------------------------
    diags.extend(_lint_markers(ops, file))

    # A cursor bug here would silently misattribute liveness; keep the
    # invariant explicit.
    assert cursor == len(values)
    return diags


def _consumes_count(spec: Spec, op: Op) -> int:
    try:
        return len(spec.node_by_name(op.node).consumes)
    except SpecError:
        return 0


def _lint_markers(ops: Sequence[Op],
                  file: Optional[str]) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    real = [i for i, op in enumerate(ops) if not op.is_snapshot_marker()]
    markers = [i for i, op in enumerate(ops) if op.is_snapshot_marker()]
    if not markers:
        return diags
    first_real = real[0] if real else len(ops)
    last_real = real[-1] if real else -1
    interior = []
    prev = None
    for i in markers:
        if prev is not None and i == prev + 1:
            diags.append(Diagnostic(
                "NYX012", "consecutive duplicate snapshot marker",
                severity=Severity.ERROR, file=file, op_index=i,
                fixable=True))
        elif i < first_real:
            diags.append(Diagnostic(
                "NYX012", "snapshot marker before any op",
                severity=Severity.ERROR, file=file, op_index=i,
                fixable=True))
        elif i > last_real:
            diags.append(Diagnostic(
                "NYX012", "trailing snapshot marker",
                severity=Severity.ERROR, file=file, op_index=i,
                fixable=True))
        else:
            interior.append(i)
        prev = i
    if len(interior) > 1:
        for i in interior[:-1]:
            diags.append(Diagnostic(
                "NYX012", "superseded snapshot marker (a later marker "
                "overwrites this snapshot before it is ever resumed)",
                file=file, op_index=i, fixable=True))
    return diags
