"""Tests for the Super Mario substrate: engine, levels, target, solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mario.engine import (Buttons, MarioEngine, JUMP_VELOCITY,
                                MAX_RUN)
from repro.mario.levels import GROUND_ROW, LEVEL_NAMES, load_level, render
from repro.mario.solver import speedrun_seconds
from repro.mario.target import (FRAMES_PER_PACKET, MarioTarget,
                                make_seeds, mario_profile)

from tests.target_harness import TargetHarness

RUN = int(Buttons.RIGHT | Buttons.B)
JUMP = RUN | int(Buttons.A)


class TestLevels:
    def test_all_32_levels_generate(self):
        assert len(LEVEL_NAMES) == 32
        for name in LEVEL_NAMES:
            level = load_level(name)
            assert level.flag_x < level.width
            assert level.solids

    def test_levels_are_deterministic_and_cached(self):
        assert load_level("3-2") is load_level("3-2")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            load_level("9-9")

    def test_start_has_ground(self):
        for name in ("1-1", "8-4"):
            level = load_level(name)
            col, row = level.start
            assert (col, row + 1) in level.solids

    def test_21_has_glitch_pit(self):
        """2-1's signature: a pit bounded by a wall taller than any
        jump (only the wall-jump glitch climbs it)."""
        level = load_level("2-1")
        run = 0
        found = False
        for col in range(level.width):
            if (col, GROUND_ROW) not in level.solids:
                run += 1
            else:
                if run >= 4 and (col, GROUND_ROW - 5) in level.solids:
                    found = True
                run = 0
        assert found

    def test_render_shape(self):
        level = load_level("1-1")
        art = render(level)
        lines = art.splitlines()
        assert len(lines) == level.height
        assert all(len(line) == level.width for line in lines)
        assert "#" in art and "F" in art


class TestEngine:
    def engine(self, name="1-1"):
        return MarioEngine(load_level(name))

    def test_gravity_lands_on_ground(self):
        engine = self.engine()
        state = engine.new_game()
        for _ in range(60):
            engine.step(state, 0)
        assert state.on_ground
        # Feet rest exactly on the ground row's top edge.
        assert state.y == GROUND_ROW

    def test_running_right_moves_right(self):
        engine = self.engine()
        state = engine.new_game()
        for _ in range(100):
            engine.step(state, RUN)
            if not state.alive:
                break
        assert state.max_x > state.enemies[0].x * 0 + 5  # moved well right

    def test_run_speed_cap(self):
        engine = self.engine()
        state = engine.new_game()
        for _ in range(120):
            engine.step(state, RUN)
            if not state.alive:
                break
        assert state.vx <= MAX_RUN + 1e-9

    def test_jump_only_from_ground(self):
        engine = self.engine()
        state = engine.new_game()
        for _ in range(30):
            engine.step(state, 0)  # settle
        engine.step(state, int(Buttons.A))
        # One frame of gravity already applied within the step.
        assert state.vy < JUMP_VELOCITY / 2
        vy_after_jump = state.vy
        engine.step(state, int(Buttons.A))
        assert state.vy > vy_after_jump  # gravity, no double jump

    def test_plain_run_dies_or_stalls_before_flag(self):
        """The seed premise: no-jump tapes never finish a level."""
        engine = self.engine()
        state = engine.new_game()
        for _ in range(4000):
            engine.step(state, RUN)
            if not state.alive or state.won:
                break
        assert not state.won

    def test_determinism(self):
        engine = self.engine()
        tape = bytes((JUMP if i % 37 < 9 else RUN) for i in range(600))
        a, b = engine.new_game(), engine.new_game()
        engine.run(a, tape)
        engine.run(b, tape)
        assert (a.x, a.y, a.alive, a.frame) == (b.x, b.y, b.alive, b.frame)

    def test_ijon_slot_monotone_in_progress(self):
        engine = self.engine()
        state = engine.new_game()
        slots = []
        for _ in range(300):
            engine.step(state, RUN)
            slots.append(engine.ijon_slot(state))
            if not state.alive:
                break
        assert slots == sorted(slots)

    @given(st.binary(min_size=1, max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_engine_never_crashes_on_any_tape(self, tape):
        engine = self.engine()
        state = engine.new_game()
        engine.run(state, tape)
        assert isinstance(state.x, float)


class TestMarioTarget:
    def test_target_plays_frames_from_network(self):
        harness = TargetHarness(mario_profile("1-1"))
        harness.send(bytes([RUN]) * 25)
        assert harness.program.game.frame == 25
        assert harness.program.game.x > 2.0

    def test_dead_game_stops_consuming(self):
        harness = TargetHarness(mario_profile("1-1"))
        # Kill the game, then deliver more input: the target must stop
        # reading, leaving the packet unconsumed (the effective-packets
        # signal snapshot placement relies on).
        harness.send(bytes([RUN]) * FRAMES_PER_PACKET)
        harness.program.game.alive = False
        harness.send(bytes([RUN]) * FRAMES_PER_PACKET)
        assert harness.interceptor.pending_packets(0) == 1

    def test_snapshot_rewinds_the_game(self):
        harness = TargetHarness(mario_profile("1-1"))
        harness.send(bytes([RUN]) * 25)
        assert harness.program.game.frame == 25
        harness.reset()
        program = next(p for p in harness.kernel.processes.values()).program
        assert program.game.frame == 0

    def test_win_reports_solved(self):
        # Drive 1-1 with the solver-quality tape: run + periodic jumps
        # is not guaranteed to win, so instead teleport-check the
        # reporting path with a tiny synthetic level: use level 1-1 and
        # place the game just before the flag.
        harness = TargetHarness(mario_profile("1-1"))
        program = harness.program
        program.game.x = float(program.engine.level.flag_x - 1)
        harness.kernel.touch("proc:1")
        harness.send(bytes([RUN]) * 30)
        report = harness.crash()
        assert report is not None
        assert report.kind.value == "solved"

    def test_seeds_cover_the_level_length(self):
        for seed in make_seeds("1-1"):
            frames = sum(len(p) for p in
                         (seed.payload_of(i) for i in seed.packet_indices()))
            level = load_level("1-1")
            assert frames * MAX_RUN > level.width  # enough tape to win


class TestSolverHelpers:
    def test_speedrun_time_reasonable(self):
        t = speedrun_seconds("1-1")
        level = load_level("1-1")
        assert 0 < t < 60
        assert t == pytest.approx((level.flag_x / MAX_RUN) / 60.0)
