"""Unit tests for the parallel campaign orchestrator.

The heavy scalability claims (§6: footprint ≤ 2x, execs/s scaling)
live in ``benchmarks/test_parallel_campaign.py``; these tests pin the
mechanics — root adoption without boot, corpus sync through the merged
bitmap, persistence — at small budgets.
"""

import json

import pytest

from repro.cli import main
from repro.fuzz.campaign import build_parallel_campaign
from repro.fuzz.input import packets_input
from repro.fuzz.parallel import ParallelCampaign, ParallelConfig
from repro.fuzz.persist import load_corpus, save_parallel_campaign
from repro.targets import PROFILES


@pytest.fixture(scope="module")
def small_campaign():
    campaign = build_parallel_campaign(
        PROFILES["lightftp"], workers=3, seed=11, time_budget=1e9,
        max_total_execs=300, sync_interval=1.0)
    campaign.run()
    return campaign


class TestFleetConstruction:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ParallelCampaign(PROFILES["lightftp"],
                             ParallelConfig(workers=0))

    def test_workers_share_the_root_pages(self):
        campaign = build_parallel_campaign(PROFILES["lightftp"], workers=3,
                                           seed=0)
        root_ids = {id(p) for p in campaign.root.pages}
        for worker in campaign.workers:
            page_ids = set(worker.machine.memory.page_identities())
            # Freshly adopted, no execution yet: every worker page that
            # exists in the root image is the *same object*, not a copy.
            assert root_ids & page_ids

    def test_adopted_workers_execute_without_booting(self):
        """A worker built from the root image (never booted) serves the
        protocol exactly like the golden VM would."""
        campaign = build_parallel_campaign(PROFILES["lightftp"], workers=2,
                                           seed=0)
        session = packets_input([b"USER anonymous\r\n", b"PASS x\r\n",
                                 b"QUIT\r\n"])
        results = [w.executor.run_full(session.copy())
                   for w in campaign.workers]
        assert all(r.packets_consumed == 3 for r in results)
        assert sorted(results[0].trace.items()) == \
            sorted(results[1].trace.items())

    def test_worker_seeds_differ(self):
        campaign = build_parallel_campaign(PROFILES["lightftp"], workers=3,
                                           seed=0)
        seeds = {w.fuzzer.config.seed for w in campaign.workers}
        assert len(seeds) == 3


class TestCorpusSync:
    def test_globally_new_entries_reach_all_peers(self, small_campaign):
        for worker in small_campaign.workers:
            imported = [e for e in worker.fuzzer.corpus.entries
                        if e.input.origin == "import"]
            assert imported, "worker %d never imported" % worker.worker_id

    def test_merged_bitmap_bounds_worker_coverage(self, small_campaign):
        global_edges = small_campaign.global_coverage.edge_count()
        for worker in small_campaign.workers:
            assert worker.fuzzer.coverage.edge_count() <= global_edges

    def test_coverage_series_is_monotonic(self, small_campaign):
        series = small_campaign.coverage_series
        assert series
        assert all(a[1] < b[1] for a, b in zip(series, series[1:]))

    def test_campaign_runs_only_once(self, small_campaign):
        with pytest.raises(RuntimeError):
            small_campaign.run()


class TestAggregation:
    def test_aggregate_sums_worker_execs(self, small_campaign):
        aggregate = small_campaign.aggregate()
        assert aggregate.total_execs == \
            sum(w.fuzzer.stats.execs for w in small_campaign.workers)
        assert aggregate.total_execs >= 300
        assert aggregate.num_workers == 3

    def test_footprint_shape(self, small_campaign):
        footprint = small_campaign.unique_page_footprint()
        assert set(footprint) == {"single", "total", "ratio"}
        assert footprint["single"] > 0
        assert footprint["total"] >= footprint["single"]
        assert footprint["ratio"] == \
            footprint["total"] / footprint["single"]

    def test_footprint_with_image_ballast_stays_shared(self):
        # The lean simulated guest boots into a handful of pages, so
        # worker churn dominates the bare ratio.  Against a realistic
        # image (here 256 pages of ballast) the fleet shares almost
        # everything — the full §6 claim is benchmarked in
        # benchmarks/test_parallel_campaign.py.
        campaign = build_parallel_campaign(
            PROFILES["lightftp"], workers=3, seed=1, time_budget=1e9,
            max_total_execs=90, sync_interval=1.0, image_pages=256)
        campaign.run()
        footprint = campaign.unique_page_footprint()
        assert footprint["single"] >= 256
        assert footprint["ratio"] <= 1.25


class TestParallelPersistence:
    def test_save_dedups_and_roundtrips(self, small_campaign, tmp_path):
        written = save_parallel_campaign(small_campaign, str(tmp_path))
        assert written > 0
        queue_files = list((tmp_path / "queue").glob("*.nyx"))
        blobs = {p.read_bytes() for p in queue_files}
        # Sync shares entries between workers; the merged queue must
        # not write those duplicates twice.
        assert len(blobs) == len(queue_files)
        seeds = load_corpus(str(tmp_path))
        assert len(seeds) == len(queue_files)

    def test_stats_json_holds_aggregate_and_footprint(self, small_campaign,
                                                      tmp_path):
        save_parallel_campaign(small_campaign, str(tmp_path))
        payload = json.loads((tmp_path / "stats.json").read_text())
        assert payload["num_workers"] == 3
        assert len(payload["workers"]) == 3
        assert payload["merged"]["execs"] >= 300
        assert payload["footprint"]["ratio"] >= 1.0


class TestCliWorkers:
    def test_fuzz_with_workers_flag(self, capsys, tmp_path):
        code = main(["fuzz", "lightftp", "--workers", "2", "--execs", "80",
                     "--time", "1e9", "--seed", "3",
                     "--out", str(tmp_path / "c")])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 nyx-net-aggressive workers" in out
        assert "shared-root footprint" in out
        assert (tmp_path / "c" / "stats.json").exists()
