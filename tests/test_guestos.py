"""Integration tests: guest OS semantics and snapshot-backed resets."""

import pytest

from repro.guestos.errors import Errno, GuestError
from repro.guestos.kernel import Kernel
from repro.guestos.sockets import SockDomain, SockType

from tests.helpers import (EchoServer, FileWriter, ForkingEchoServer,
                           boot_echo, make_machine)


class TestEchoServer:
    def test_external_echo_roundtrip(self):
        machine, kernel = boot_echo(port=7)
        conn = kernel.external_connect(7)
        conn.send(b"ping")
        kernel.run()
        assert conn.recv() == [b"1:ping"]

    def test_multiple_packets_increment_counter(self):
        machine, kernel = boot_echo(port=7)
        conn = kernel.external_connect(7)
        conn.send(b"a")
        kernel.run()
        conn.send(b"b")
        kernel.run()
        assert conn.recv() == [b"1:a", b"2:b"]

    def test_connect_refused_without_listener(self):
        machine = make_machine()
        kernel = Kernel(machine)
        with pytest.raises(GuestError) as exc:
            kernel.external_connect(9999)
        assert exc.value.errno is Errno.ECONNREFUSED

    def test_snapshot_reset_rolls_back_server_state(self):
        machine, kernel = boot_echo(port=7)
        kernel.coalesce_external = False  # keep the two messages distinct
        conn = kernel.external_connect(7)
        conn.send(b"one")
        conn.send(b"two")
        kernel.run()
        server = next(p for p in kernel.processes.values()
                      if p.program.name == "echo")
        assert server.program.counter == 2
        kernel.flush_to_memory()
        machine.restore_root()
        server = next(p for p in kernel.processes.values()
                      if p.program.name == "echo")
        assert server.program.counter == 0
        assert server.program.seen == []
        # And the server still works after the reset.
        conn2 = kernel.external_connect(7)
        conn2.send(b"again")
        kernel.run()
        assert conn2.recv() == [b"1:again"]

    def test_stale_external_conn_after_reset(self):
        machine, kernel = boot_echo(port=7)
        conn = kernel.external_connect(7)
        kernel.run()
        kernel.flush_to_memory()
        machine.restore_root()
        with pytest.raises(GuestError):
            conn.send(b"late")


class TestForking:
    def test_fork_per_connection(self):
        machine = make_machine()
        kernel = Kernel(machine)
        kernel.spawn(ForkingEchoServer(port=21))
        kernel.run()
        conn = kernel.external_connect(21)
        kernel.run()
        conn.send(b"hello")
        kernel.run()
        assert conn.recv() == [b"worker:hello"]
        assert len(kernel.processes) == 2

    def test_forked_children_rolled_back_by_snapshot(self):
        machine = make_machine()
        kernel = Kernel(machine)
        kernel.spawn(ForkingEchoServer(port=21))
        kernel.run()
        kernel.flush_to_memory(full=True)
        machine.capture_root()
        conn = kernel.external_connect(21)
        kernel.run()
        assert len(kernel.processes) == 2
        kernel.flush_to_memory()
        machine.restore_root()
        assert len(kernel.processes) == 1

    def test_shared_socket_refcounts_across_fork(self):
        machine = make_machine()
        kernel = Kernel(machine)
        kernel.spawn(ForkingEchoServer(port=21))
        kernel.run()
        conn = kernel.external_connect(21)
        kernel.run()
        # Parent closed its copy; the worker still owns the conn.
        conn.send(b"x")
        kernel.run()
        assert conn.recv() == [b"worker:x"]


class TestFilesystemState:
    def test_uploads_are_reset_by_snapshot(self):
        machine = make_machine()
        kernel = Kernel(machine)
        kernel.spawn(FileWriter(port=9000))
        kernel.run()
        kernel.flush_to_memory(full=True)
        machine.capture_root()
        conn = kernel.external_connect(9000)
        conn.send(b"uploaded-bytes")
        kernel.run()
        assert kernel.fs.exists("/srv/upload.bin")
        kernel.flush_to_memory()
        machine.restore_root()
        assert not kernel.fs.exists("/srv/upload.bin")

    def test_file_content_roundtrip(self):
        machine = make_machine()
        kernel = Kernel(machine)
        kernel.fs.write_file(machine.disk, "/etc/conf", b"key=value")
        assert kernel.fs.read_file(machine.disk, "/etc/conf") == b"key=value"
        kernel.fs.write_file(machine.disk, "/etc/conf", b"more", append=True)
        assert kernel.fs.read_file(machine.disk, "/etc/conf") == b"key=valuemore"


class TestSyscallSemantics:
    def test_dup_and_close_keep_socket_alive(self):
        machine, kernel = boot_echo(port=7)
        server = next(p for p in kernel.processes.values())
        api = kernel.api_for(server.pid)
        fd = server.program.listen_fd
        dup_fd = api.dup(fd)
        api.close(fd)
        # Listener still bound via the dup'd fd.
        conn = kernel.external_connect(7)
        assert conn is not None

    def test_close_last_fd_tears_down_listener(self):
        machine, kernel = boot_echo(port=7)
        server = next(p for p in kernel.processes.values())
        api = kernel.api_for(server.pid)
        api.close(server.program.listen_fd)
        with pytest.raises(GuestError):
            kernel.external_connect(7)

    def test_bind_conflict(self):
        machine, kernel = boot_echo(port=7)
        server = next(p for p in kernel.processes.values())
        api = kernel.api_for(server.pid)
        fd = api.socket(SockDomain.INET, SockType.STREAM)
        with pytest.raises(GuestError) as exc:
            api.bind(fd, 7)
        assert exc.value.errno is Errno.EADDRINUSE

    def test_recv_on_bad_fd(self):
        machine, kernel = boot_echo(port=7)
        server = next(p for p in kernel.processes.values())
        api = kernel.api_for(server.pid)
        with pytest.raises(GuestError) as exc:
            api.recv(99)
        assert exc.value.errno is Errno.EBADF

    def test_pipe_roundtrip(self):
        machine = make_machine()
        kernel = Kernel(machine)
        proc = kernel.spawn(EchoServer(port=800))
        api = kernel.api_for(proc.pid)
        r, w = api.pipe()
        api.write(w, b"through the pipe")
        assert api.read(r) == b"through the pipe"

    def test_udp_datagram_boundaries(self):
        machine = make_machine()
        kernel = Kernel(machine)
        proc = kernel.spawn(EchoServer(port=801))
        api = kernel.api_for(proc.pid)
        fd = api.socket(SockDomain.INET, SockType.DGRAM)
        api.bind(fd, 53)
        conn = kernel.external_connect(53, dgram=True)
        conn.send(b"q1")
        conn.send(b"q2")
        data1, _ = api.recvfrom(fd)
        data2, _ = api.recvfrom(fd)
        assert (data1, data2) == (b"q1", b"q2")

    def test_external_stream_coalesces_like_tcp(self):
        machine, kernel = boot_echo(port=7)
        kernel.coalesce_external = True
        conn = kernel.external_connect(7)
        # Two sends before the guest runs: the real TCP path merges them.
        conn.send(b"ab")
        conn.send(b"cd")
        kernel.run()
        assert conn.recv() == [b"1:abcd"]

    def test_epoll_readiness(self):
        machine = make_machine()
        kernel = Kernel(machine)
        proc = kernel.spawn(EchoServer(port=802))
        api = kernel.api_for(proc.pid)
        fd = api.socket(SockDomain.INET, SockType.DGRAM)
        api.bind(fd, 5353)
        epfd = api.epoll_create()
        api.epoll_ctl_add(epfd, fd)
        assert api.epoll_wait(epfd) == []
        conn = kernel.external_connect(5353, dgram=True)
        conn.send(b"wake")
        events = api.epoll_wait(epfd)
        assert [e.fd for e in events] == [fd]


class TestStateSerialization:
    def test_flush_reload_preserves_kernel_state(self):
        machine, kernel = boot_echo(port=7)
        conn = kernel.external_connect(7)
        conn.send(b"persisted")
        kernel.run()
        kernel.flush_to_memory()
        kernel.reload_from_memory()
        server = next(p for p in kernel.processes.values()
                      if p.program.name == "echo")
        assert server.program.seen == [b"persisted"]
        assert 7 in kernel.g.tcp_bindings

    def test_flush_is_stable_when_idle(self):
        machine, kernel = boot_echo(port=7)
        kernel.flush_to_memory(full=True)
        machine.memory.take_dirty()
        kernel.flush_to_memory(full=True)
        # Nothing changed, so a second full flush dirties nothing.
        assert machine.memory.dirty_count == 0
