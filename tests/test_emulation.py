"""Integration tests: emulation layer + executor + snapshot fuzzing."""

import pytest

from repro.emu.interceptor import Interceptor
from repro.emu.surface import AttackSurface
from repro.fuzz.campaign import build_campaign
from repro.fuzz.executor import NyxExecutor
from repro.fuzz.input import FuzzInput, packets_input
from repro.guestos.kernel import Kernel
from repro.spec.bytecode import Op
from repro.targets.lightftp import PROFILE as LIGHTFTP
from repro.targets.dnsmasq import PROFILE as DNSMASQ
from repro.targets.mysql_client import PROFILE as MYSQL
from repro.vm.machine import Machine

from tests.helpers import EchoServer


def echo_campaign():
    """A machine with an echo server hooked by the emulation layer."""
    machine = Machine(memory_bytes=16 * 1024 * 1024)
    kernel = Kernel(machine)
    interceptor = Interceptor(kernel, AttackSurface.tcp_server(7))
    kernel.spawn(EchoServer(7))
    kernel.run()
    kernel.flush_to_memory(full=True)
    machine.capture_root()
    executor = NyxExecutor(machine, kernel, interceptor, tracer=None)
    return machine, kernel, interceptor, executor


class TestInterceptor:
    def test_surface_listener_detected(self):
        _machine, kernel, interceptor, _executor = echo_campaign()
        assert len(interceptor.listener_sids) == 1

    def test_emulated_connection_and_packet(self):
        machine, kernel, interceptor, _executor = echo_campaign()
        interceptor.reset_for_test()
        interceptor.open_connection(0)
        interceptor.queue_packet(0, b"hello")
        kernel.run()
        assert interceptor.responses(0) == [b"1:hello"]

    def test_packet_boundaries_preserved(self):
        machine, kernel, interceptor, _executor = echo_campaign()
        interceptor.reset_for_test()
        interceptor.open_connection(0)
        interceptor.queue_packet(0, b"first")
        interceptor.queue_packet(0, b"second")
        kernel.run()
        # Two recv() calls, two packets: the §3.3 guarantee.
        assert interceptor.responses(0) == [b"1:first", b"2:second"]

    def test_no_nic_traffic_on_emulated_path(self):
        machine, kernel, interceptor, _executor = echo_campaign()
        interceptor.reset_for_test()
        interceptor.open_connection(0)
        interceptor.queue_packet(0, b"data")
        kernel.run()
        assert machine.devices.nic.rx_packets == 0

    def test_close_connection_delivers_eof(self):
        machine, kernel, interceptor, _executor = echo_campaign()
        interceptor.reset_for_test()
        interceptor.open_connection(0)
        interceptor.queue_packet(0, b"bye")
        interceptor.close_connection(0)
        kernel.run()
        server = next(p for p in kernel.processes.values())
        assert server.program.conns == []  # EOF seen, conn closed

    def test_first_read_flag_for_snapshot_placement(self):
        machine, kernel, interceptor, _executor = echo_campaign()
        assert not interceptor.saw_first_read
        interceptor.reset_for_test()
        interceptor.open_connection(0)
        interceptor.queue_packet(0, b"x")
        kernel.run()
        assert interceptor.saw_first_read

    def test_connection_limit(self):
        machine, kernel, interceptor, _executor = echo_campaign()
        interceptor.surface.max_connections = 2
        interceptor.reset_for_test()
        interceptor.open_connection(0)
        interceptor.open_connection(1)
        with pytest.raises(Exception):
            interceptor.open_connection(2)


class TestExecutor:
    def test_full_run_resets_state(self):
        machine, kernel, interceptor, executor = echo_campaign()
        inp = packets_input([b"a", b"b", b"c"])
        r1 = executor.run_full(inp)
        r2 = executor.run_full(inp)
        # Deterministic: the second run sees identical guest state.
        assert r1.packets_consumed == r2.packets_consumed == 3

    def test_snapshot_marker_op_creates_incremental(self):
        machine, kernel, interceptor, executor = echo_campaign()
        ops = [Op("connection"), Op("packet", (0,), (b"one",)),
               Op("snapshot"), Op("packet", (0,), (b"two",))]
        executor.run_full(FuzzInput(ops))
        assert machine.snapshots.incremental_active
        assert executor.suffix_resume_index == 3

    def test_suffix_run_skips_prefix(self):
        machine, kernel, interceptor, executor = echo_campaign()
        inp = packets_input([b"p1", b"p2", b"p3", b"p4"])
        executor.run_full(inp, snapshot_after_packet=1)
        child = inp.copy()
        child.with_payload(3, b"XX")
        result = executor.run_suffix(child)
        assert result.suffix_run
        # Only packets 3 and 4 were replayed.
        assert result.packets_consumed == 2
        # The echo counter continued from the snapshot point (2).
        assert interceptor.responses(0)[-1].startswith(b"4:")

    def test_suffix_runs_are_repeatable(self):
        machine, kernel, interceptor, executor = echo_campaign()
        inp = packets_input([b"p1", b"p2", b"p3"])
        executor.run_full(inp, snapshot_after_packet=0)
        for _ in range(5):
            result = executor.run_suffix(inp)
            assert result.packets_consumed == 2
            assert interceptor.responses(0)[-1].startswith(b"3:")

    def test_finish_cycle_returns_to_root(self):
        machine, kernel, interceptor, executor = echo_campaign()
        inp = packets_input([b"p1", b"p2"])
        executor.run_full(inp, snapshot_after_packet=0)
        executor.finish_snapshot_cycle()
        assert not machine.snapshots.incremental_active
        result = executor.run_full(inp)
        assert result.packets_consumed == 2

    def test_run_suffix_without_snapshot_raises(self):
        machine, kernel, interceptor, executor = echo_campaign()
        with pytest.raises(RuntimeError):
            executor.run_suffix(packets_input([b"x"]))

    def test_bad_connection_refs_are_noops(self):
        machine, kernel, interceptor, executor = echo_campaign()
        ops = [Op("connection"), Op("packet", (0,), (b"ok",))]
        inp = FuzzInput(ops)
        inp.ops.append(Op("packet", (9,), (b"bad ref",)))
        result = executor.run_full(inp)
        assert result.crash is None


class TestCampaignIntegration:
    def test_lightftp_campaign_reaches_coverage(self):
        handles = build_campaign(LIGHTFTP, policy="balanced", seed=5,
                                 time_budget=5.0, max_execs=150)
        stats = handles.fuzzer.run_campaign()
        assert stats.execs == 150
        assert stats.final_edges > 50
        assert len(handles.fuzzer.corpus) >= 3

    def test_udp_target_campaign(self):
        handles = build_campaign(DNSMASQ, policy="none", seed=5,
                                 time_budget=5.0, max_execs=100)
        stats = handles.fuzzer.run_campaign()
        assert stats.final_edges > 30

    def test_client_mode_campaign(self):
        handles = build_campaign(MYSQL, policy="none", seed=5,
                                 time_budget=5.0, max_execs=100)
        stats = handles.fuzzer.run_campaign()
        assert stats.final_edges > 20

    def test_policies_are_deterministic(self):
        runs = []
        for _ in range(2):
            handles = build_campaign(LIGHTFTP, policy="aggressive", seed=11,
                                     time_budget=5.0, max_execs=120)
            stats = handles.fuzzer.run_campaign()
            runs.append((stats.execs, stats.final_edges,
                         len(handles.fuzzer.corpus)))
        assert runs[0] == runs[1]

    def test_incremental_snapshots_improve_throughput(self):
        results = {}
        for policy in ("none", "aggressive"):
            handles = build_campaign(LIGHTFTP, policy=policy, seed=2,
                                     time_budget=60.0, max_execs=400)
            stats = handles.fuzzer.run_campaign()
            results[policy] = stats.execs_per_second()
        assert results["aggressive"] > results["none"]
