"""Tests for corpus persistence and the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.fuzz.campaign import build_campaign
from repro.fuzz.persist import load_corpus, save_campaign
from repro.targets import PROFILES


@pytest.fixture(scope="module")
def finished_campaign():
    handles = build_campaign(PROFILES["dnsmasq"], policy="balanced", seed=2,
                             time_budget=1e9, max_execs=400)
    handles.fuzzer.run_campaign()
    return handles


class TestPersistence:
    def test_save_writes_queue_and_stats(self, finished_campaign, tmp_path):
        written = save_campaign(finished_campaign.fuzzer, str(tmp_path))
        assert written > 0
        assert (tmp_path / "stats.json").exists()
        stats = json.loads((tmp_path / "stats.json").read_text())
        assert stats["target"] == "dnsmasq"
        assert stats["execs"] == 400
        assert len(list((tmp_path / "queue").glob("*.nyx"))) == \
            len(finished_campaign.fuzzer.corpus)

    def test_crash_reproducers_saved(self, finished_campaign, tmp_path):
        save_campaign(finished_campaign.fuzzer, str(tmp_path))
        crashes = finished_campaign.fuzzer.crashes
        for key in crashes.records:
            safe = key.replace(":", "_").replace("/", "_")
            assert (tmp_path / "crashes" / (safe + ".txt")).exists()

    def test_load_roundtrip(self, finished_campaign, tmp_path):
        save_campaign(finished_campaign.fuzzer, str(tmp_path))
        seeds = load_corpus(str(tmp_path))
        assert len(seeds) == len(finished_campaign.fuzzer.corpus)
        assert all(s.origin == "persisted" for s in seeds)

    def test_load_limit(self, finished_campaign, tmp_path):
        save_campaign(finished_campaign.fuzzer, str(tmp_path))
        assert len(load_corpus(str(tmp_path), limit=2)) == 2

    def test_load_skips_corrupt_files(self, finished_campaign, tmp_path):
        save_campaign(finished_campaign.fuzzer, str(tmp_path))
        (tmp_path / "queue" / "id_zzz.nyx").write_bytes(b"garbage")
        before = len(finished_campaign.fuzzer.corpus)
        assert len(load_corpus(str(tmp_path))) == before

    def test_load_missing_dir_is_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []

    def test_resume_campaign_from_saved_corpus(self, finished_campaign,
                                               tmp_path):
        save_campaign(finished_campaign.fuzzer, str(tmp_path))
        seeds = load_corpus(str(tmp_path), limit=5)
        handles = build_campaign(PROFILES["dnsmasq"], policy="none", seed=9,
                                 time_budget=1e9, max_execs=30, seeds=seeds)
        stats = handles.fuzzer.run_campaign()
        assert stats.execs == 30


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["fuzz", "lightftp", "--policy", "none"])
        assert args.command == "fuzz" and args.policy == "none"
        args = parser.parse_args(["mario", "2-1", "--modes", "ijon"])
        assert args.level == "2-1"

    def test_targets_command(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        assert "lightftp" in out and "firefox-ipc" in out

    def test_fuzz_command_unknown_target(self, capsys):
        assert main(["fuzz", "doom"]) == 2

    def test_fuzz_command_runs(self, capsys, tmp_path):
        code = main(["fuzz", "lightftp", "--execs", "40", "--time", "5",
                     "--seed", "3", "--out", str(tmp_path / "c")])
        assert code == 0
        out = capsys.readouterr().out
        assert "40 execs" in out
        assert (tmp_path / "c" / "stats.json").exists()

    def test_replay_command_no_crash(self, capsys, tmp_path):
        main(["fuzz", "lightftp", "--execs", "20", "--time", "5",
              "--out", str(tmp_path / "c")])
        capsys.readouterr()
        queue = sorted((tmp_path / "c" / "queue").glob("*.nyx"))
        assert queue
        code = main(["replay", "lightftp", str(queue[0])])
        assert code == 0
        assert "no crash" in capsys.readouterr().out

    def test_replay_command_crash_reproducer(self, capsys, tmp_path):
        # Fuzz a target with a shallow bug until it crashes, then
        # replay the saved reproducer.
        code = main(["fuzz", "dnsmasq", "--execs", "3000", "--time", "600",
                     "--seed", "7", "--out", str(tmp_path / "c")])
        assert code == 0
        crashes = sorted((tmp_path / "c" / "crashes").glob("*.nyx"))
        capsys.readouterr()
        if not crashes:
            pytest.skip("no crash found at this budget/seed")
        code = main(["replay", "dnsmasq", str(crashes[0])])
        out = capsys.readouterr().out
        assert code == 1
        assert "CRASH" in out

    def test_mario_command(self, capsys):
        assert main(["mario", "1-1", "--modes", "nyx-aggressive",
                     "--execs", "3000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "nyx-aggressive" in out
