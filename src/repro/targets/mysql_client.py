"""MySQL client: the §5.4 *client fuzzing* case study.

Here the roles flip: the target is a client that ``connect()``s out,
and the fuzzer plays the server, feeding it handshake and result-set
packets.  The agent hooks the outgoing connection (client-mode attack
surface).  The planted bug matches the paper's find: "an out-of-bound
read on the current version of the client" — in the column-definition
parser of the result set, a declared field count larger than the
packet leads the parser off the end.
"""

from __future__ import annotations

import struct

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashKind, Errno, GuestError
from repro.guestos.process import Program
from repro.guestos.sockets import SockDomain, SockType
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import TargetProfile

SERVER_PORT = 3306


class MySqlClient(Program):
    """mysql(1) connecting to a (fuzzer-played) server."""

    name = "mysql-client"
    asan = True

    def __init__(self) -> None:
        self.fd = None
        self.state = "start"
        self.heap_slack = 3
        self.server_version = b""
        self.columns = []
        self.rows = []
        self.queries_sent = 0

    def on_start(self, api) -> None:
        api.cpu(0.01)  # option-file parsing
        self.fd = api.socket(SockDomain.INET, SockType.STREAM)
        api.connect(self.fd, SERVER_PORT)
        self.state = "await-handshake"

    def poll(self, api) -> None:
        if self.fd is None or self.state == "done":
            return
        while True:
            try:
                data = api.recv(self.fd)
            except GuestError as err:
                if err.errno is Errno.EAGAIN:
                    return
                self.state = "done"
                return
            if data == b"":
                self.state = "done"
                return
            api.cpu(len(data) * 3e-9 + 1e-6)
            self._packet(api, data)

    # -- MySQL wire protocol (client side) ----------------------------------

    def _packet(self, api, data: bytes) -> None:
        if len(data) < 4:
            return
        length = int.from_bytes(data[:3], "little")
        seq = data[3]
        body = data[4:4 + length]
        if self.state == "await-handshake":
            self._handshake(api, body, seq)
        elif self.state == "await-auth-ok":
            self._auth_result(api, body)
        elif self.state == "await-result":
            self._result(api, body)
        elif self.state == "await-columns":
            self._column_def(api, body)
        elif self.state == "await-rows":
            self._row(api, body)

    def _handshake(self, api, body: bytes, seq: int) -> None:
        if not body or body[0] != 10:  # protocol version 10
            self.state = "done"
            return
        end = body.find(b"\x00", 1)
        if end < 0:
            self.state = "done"
            return
        self.server_version = body[1:end][:64]
        # Respond with a login packet.
        login = struct.pack("<IIB23x", 0x00000200, 1 << 24, 33) \
            + b"repro\x00" + b"\x00"
        self._send(api, login, seq + 1)
        self.state = "await-auth-ok"

    def _auth_result(self, api, body: bytes) -> None:
        if body[:1] == b"\x00":  # OK packet
            query = b"\x03SELECT * FROM t"
            self._send(api, query, 0)
            self.queries_sent += 1
            self.state = "await-result"
        elif body[:1] == b"\xff":  # ERR
            self.state = "done"
        # anything else: keep waiting (auth switch etc.)

    def _result(self, api, body: bytes) -> None:
        if not body:
            return
        first = body[0]
        if first == 0x00:     # OK (no result set)
            self.state = "await-auth-ok"
        elif first == 0xFF:   # ERR
            self.state = "done"
        else:
            # Column count (length-encoded int, simple form).
            self.expected_columns = first
            if first == 0xFB or first > 0xF0:
                self.state = "done"
                return
            self.columns = []
            self.state = "await-columns"

    def _column_def(self, api, body: bytes) -> None:
        if body[:1] == b"\xfe":  # EOF: columns done
            # The planted OOB read: the client trusts the column count
            # from the result header; if fewer definitions arrived, the
            # row decoder indexes past the materialized column array.
            if len(self.columns) < getattr(self, "expected_columns", 0):
                raise GuestCrashHelper.oob(
                    "mysql-client-column-oob",
                    "declared %d columns, got %d"
                    % (self.expected_columns, len(self.columns)))
            self.rows = []
            self.state = "await-rows"
            return
        # Parse a (simplified) column definition: catalog, name.
        fields = []
        offset = 0
        for _ in range(2):
            if offset >= len(body):
                fields.append(b"")
                break
            flen = body[offset]
            fields.append(body[offset + 1:offset + 1 + flen])
            offset += 1 + flen
        self.columns.append(fields[-1][:64])

    def _row(self, api, body: bytes) -> None:
        if body[:1] == b"\xfe":  # EOF: result set complete
            self.state = "done"
            return
        values = []
        offset = 0
        while offset < len(body) and len(values) < 32:
            vlen = body[offset]
            if vlen == 0xFB:  # NULL
                values.append(None)
                offset += 1
                continue
            values.append(body[offset + 1:offset + 1 + vlen])
            offset += 1 + vlen
        self.rows.append(values)

    def _send(self, api, body: bytes, seq: int) -> None:
        try:
            api.send(self.fd, len(body).to_bytes(3, "little")
                     + bytes([seq & 0xFF]) + body)
        except GuestError:
            pass


class GuestCrashHelper:
    """Raise crashes from places where MessageServer helpers are absent."""

    @staticmethod
    def oob(bug_id: str, detail: str):
        from repro.guestos.errors import GuestCrash
        return GuestCrash(CrashKind.ASAN_OOB_READ, bug_id, detail)


def _mysql_packet(body: bytes, seq: int) -> bytes:
    return len(body).to_bytes(3, "little") + bytes([seq]) + body


def _server_greeting() -> bytes:
    body = bytes([10]) + b"8.0.32-repro\x00" + struct.pack("<I", 42) \
        + b"saltsalt\x00" + struct.pack("<HBH", 0xFFFF, 33, 2) + bytes(13)
    return _mysql_packet(body, 0)


def _ok() -> bytes:
    return _mysql_packet(b"\x00\x00\x00\x02\x00\x00\x00", 2)


def _result_header(columns: int) -> bytes:
    return _mysql_packet(bytes([columns]), 1)


def _column(name: bytes) -> bytes:
    return _mysql_packet(bytes([3]) + b"def" + bytes([len(name)]) + name, 2)


def _eof() -> bytes:
    return _mysql_packet(b"\xfe\x00\x00\x02\x00", 3)


def _row(*values: bytes) -> bytes:
    body = b"".join(bytes([len(v)]) + v for v in values)
    return _mysql_packet(body, 4)


DICTIONARY = [b"\x0a8.0.32", b"\xfe\x00\x00\x02\x00", b"\x00\x00\x00\x02",
              b"\xff", b"def", b"\xfb", bytes([3]) + b"def"]


def make_seeds():
    spec = default_network_spec()
    seeds = []
    for packets in (
        [_server_greeting(), _ok(),
         _result_header(2), _column(b"id"), _column(b"name"), _eof(),
         _row(b"1", b"alice"), _row(b"2", b"bob"), _eof()],
        [_server_greeting(), _ok(),
         _result_header(1), _column(b"x"), _eof(), _row(b"42"), _eof()],
        [_server_greeting(), _mysql_packet(b"\xff\x15\x04denied", 2)],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for packet in packets:
            builder.packet(con, packet)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="mysql-client",
    protocol="mysql",
    make_program=MySqlClient,
    surface_factory=lambda: AttackSurface.tcp_client(SERVER_PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.01,
    libpreeny_compatible=False,
    planted_bugs=("asan-oob-read:mysql-client-column-oob",),
    notes="§5.4 case study: client fuzzing, fuzzer plays the server.",
)
