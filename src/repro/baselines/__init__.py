"""Baseline fuzzers the paper compares against.

Full re-implementations, not mock numbers: each baseline runs the same
guest targets on the same guest OS with the same coverage tracer, but
pays its own structural costs and uses its own feedback/mutation model:

* :mod:`repro.baselines.aflnet` — AFLNet: a persistent server, real
  network packets with inter-packet sleeps, a cleanup script, response-
  code state-machine feedback.
* :mod:`repro.baselines.aflnwe` — AFLNwe: AFLNet's network transport
  with plain byte-level mutation (no packet structure, no state).
* :mod:`repro.baselines.aflpp_desock` — AFL++ with libpreeny's desock:
  forkserver resets, the whole input as a single de-socketed stream;
  incompatible with many targets.
* :mod:`repro.baselines.agamotto` — Agamotto-style incremental
  snapshots (bitmap walks, snapshot trees, LRU eviction) for the
  Figure 6 comparison.
* :mod:`repro.baselines.ijon` — IJON's state-feedback fuzzing of Super
  Mario (Table 4).
"""

from repro.baselines.common import BaselineStats
from repro.baselines.aflnet import AflNetFuzzer, AflNetConfig
from repro.baselines.aflnwe import AflNweFuzzer
from repro.baselines.aflpp_desock import AflPlusPlusDesockFuzzer, DesockError
from repro.baselines.agamotto import AgamottoSnapshotter

__all__ = ["BaselineStats", "AflNetFuzzer", "AflNetConfig", "AflNweFuzzer",
           "AflPlusPlusDesockFuzzer", "DesockError", "AgamottoSnapshotter"]
