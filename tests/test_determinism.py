"""Determinism guarantees: identical runs produce identical outcomes.

The paper's motivation for snapshot fuzzing is *noise-free* execution
(§1: background threads and leftover state make AFLNet's coverage
noisy).  These tests pin the property down: same input, same boot →
bit-identical traces, responses and simulated cost; and repeated
executions against a snapshot never drift.
"""

from repro.emu.interceptor import Interceptor
from repro.emu.surface import AttackSurface
from repro.coverage.tracer import EdgeTracer
from repro.fuzz.executor import NyxExecutor
from repro.fuzz.input import packets_input
from repro.guestos.kernel import Kernel
from repro.targets.lightftp import LightFtpServer, PORT
from repro.vm.machine import Machine


def fresh_executor():
    machine = Machine(memory_bytes=32 * 1024 * 1024)
    kernel = Kernel(machine)
    interceptor = Interceptor(kernel, AttackSurface.tcp_server(PORT))
    kernel.spawn(LightFtpServer())
    kernel.run(max_rounds=256)
    kernel.flush_to_memory(full=True)
    machine.capture_root()
    return NyxExecutor(machine, kernel, interceptor, EdgeTracer()), machine


SESSION = packets_input([b"USER anonymous\r\n", b"PASS x\r\n",
                         b"PASV\r\n", b"LIST\r\n", b"QUIT\r\n"])


class TestCrossMachineDeterminism:
    def test_identical_traces_and_costs(self):
        results = []
        for _ in range(2):
            executor, machine = fresh_executor()
            result = executor.run_full(SESSION)
            results.append((sorted(result.trace.items()),
                            result.packets_consumed,
                            round(result.exec_time, 12)))
        assert results[0] == results[1]

    def test_identical_responses(self):
        outs = []
        for _ in range(2):
            executor, _machine = fresh_executor()
            executor.run_full(SESSION)
            outs.append(executor.interceptor.responses(0))
        assert outs[0] == outs[1]


class TestWithinMachineStability:
    def test_hundred_replays_never_drift(self):
        executor, machine = fresh_executor()
        reference = None
        for i in range(100):
            result = executor.run_full(SESSION)
            key = (sorted(result.trace.items()), result.packets_consumed)
            if reference is None:
                reference = key
            assert key == reference, "drift at replay %d" % i

    def test_suffix_replays_never_drift(self):
        executor, machine = fresh_executor()
        executor.run_full(SESSION, snapshot_after_packet=2)
        reference = None
        for i in range(50):
            result = executor.run_suffix(SESSION)
            key = (result.packets_consumed,
                   tuple(executor.interceptor.responses(0)[-2:]))
            if reference is None:
                reference = key
            assert key == reference, "suffix drift at replay %d" % i

    def test_no_state_leak_between_different_inputs(self):
        executor, machine = fresh_executor()
        baseline = executor.run_full(SESSION)
        # Run something completely different...
        executor.run_full(packets_input([b"\xff" * 100, b"SYST\r\n"]))
        # ...then the original input again: identical to the baseline.
        again = executor.run_full(SESSION)
        assert sorted(again.trace.items()) == sorted(baseline.trace.items())
        assert again.packets_consumed == baseline.packets_consumed


class TestParallelDeterminism:
    """Same seed, same worker count → byte-identical campaigns.

    The parallel orchestrator interleaves workers on the sim clock and
    syncs corpora through a merged bitmap; none of that may introduce
    host-side nondeterminism (dict ordering, id()-based tie-breaks,
    wall-clock leakage)."""

    @staticmethod
    def run_once():
        from repro.fuzz.campaign import build_parallel_campaign
        from repro.targets import PROFILES
        campaign = build_parallel_campaign(
            PROFILES["lightftp"], workers=2, seed=5, time_budget=1e9,
            max_total_execs=240, sync_interval=1.0)
        aggregate = campaign.run()
        return aggregate, campaign

    def test_same_seed_runs_are_bit_identical(self):
        agg_a, camp_a = self.run_once()
        agg_b, camp_b = self.run_once()
        # Aggregate stats serialize to the same bytes...
        assert agg_a.to_json() == agg_b.to_json()
        # ...and every worker's corpus holds the same inputs in the
        # same order, down to the serialized bytecode.
        assert camp_a.corpus_digest() == camp_b.corpus_digest()

    def test_different_seeds_diverge(self):
        from repro.fuzz.campaign import build_parallel_campaign
        from repro.targets import PROFILES
        runs = []
        for seed in (5, 6):
            campaign = build_parallel_campaign(
                PROFILES["lightftp"], workers=2, seed=seed, time_budget=1e9,
                max_total_execs=240, sync_interval=1.0)
            campaign.run()
            runs.append(campaign.corpus_digest())
        # Not a strict guarantee, but with distinct worker RNG streams
        # two corpora agreeing entry-for-entry would mean the seed is
        # ignored somewhere.
        assert runs[0] != runs[1]
