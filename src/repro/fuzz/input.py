"""Fuzzer inputs: op sequences with packet-level structure.

A :class:`FuzzInput` wraps an op sequence from a spec and knows which
ops are *packets* (data-carrying, mutable, snapshot-placeable).  "The
fuzzer is aware of the time dimension of each interaction [...] knows
about individual packets being sent and most importantly knows that
packets that were not sent yet have also not affected the program
state at all" (§4.3) — this structure is what incremental snapshot
placement operates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.spec.bytecode import Op, OpSequence, serialize, validate
from repro.spec.nodes import Spec


@dataclass
class FuzzInput:
    """One test case."""

    ops: OpSequence
    #: Where this input came from ("seed", "havoc", "splice", ...).
    origin: str = "seed"
    parent_id: Optional[int] = None

    def copy(self) -> "FuzzInput":
        return FuzzInput([Op(o.node, o.refs, o.args) for o in self.ops],
                         origin=self.origin, parent_id=self.parent_id)

    # -- packet structure ----------------------------------------------------

    def packet_indices(self) -> List[int]:
        """Op indices that carry payload data (mutable packets)."""
        return [i for i, op in enumerate(self.ops)
                if op.args and any(isinstance(a, (bytes, bytearray))
                                   for a in op.args)]

    @property
    def num_packets(self) -> int:
        return len(self.packet_indices())

    def total_payload_bytes(self) -> int:
        return sum(len(a) for op in self.ops for a in op.args
                   if isinstance(a, (bytes, bytearray)))

    def payload_of(self, op_index: int) -> bytes:
        for arg in self.ops[op_index].args:
            if isinstance(arg, (bytes, bytearray)):
                return bytes(arg)
        raise ValueError("op %d carries no payload" % op_index)

    def with_payload(self, op_index: int, payload: bytes) -> None:
        """Replace the (single) payload arg of an op, in place."""
        op = self.ops[op_index]
        new_args = []
        replaced = False
        for arg in op.args:
            if not replaced and isinstance(arg, (bytes, bytearray)):
                new_args.append(payload)
                replaced = True
            else:
                new_args.append(arg)
        if not replaced:
            raise ValueError("op %d carries no payload" % op_index)
        op.args = tuple(new_args)

    def validate_against(self, spec: Spec) -> None:
        validate(spec, self.ops)

    def to_bytecode(self, spec: Spec) -> bytes:
        return serialize(spec, self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "FuzzInput(%d ops, %d packets, origin=%s)" % (
            len(self.ops), self.num_packets, self.origin)


def packets_input(payloads: Sequence[bytes], conn_ops: bool = True) -> FuzzInput:
    """Convenience: one connection carrying the given packets, using
    the default network spec's vocabulary."""
    ops: OpSequence = []
    if conn_ops:
        ops.append(Op("connection"))
    ops.extend(Op("packet", (0,), (bytes(p),)) for p in payloads)
    return FuzzInput(ops)
