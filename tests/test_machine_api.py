"""Tests for the Machine facade and misc KernelApi calls."""

import pytest

from repro.guestos.errors import Errno, GuestError
from repro.guestos.kernel import Kernel
from repro.vm.hypercall import Hypercall
from repro.vm.machine import Machine
from repro.vm.memory import PAGE_SIZE

from tests.helpers import EchoServer, make_machine


class TestMachine:
    def test_hypercall_log_and_handler(self):
        machine = Machine(memory_bytes=64 * PAGE_SIZE)
        seen = []
        machine.set_hypercall_handler(lambda e: seen.append(e.call))
        machine.hypercall(Hypercall.RELEASE, status="done")
        assert seen == [Hypercall.RELEASE]
        log = machine.drain_hypercalls()
        assert log[0].payload == {"status": "done"}
        assert machine.drain_hypercalls() == []

    def test_hypercall_charges_vm_exit(self):
        machine = Machine(memory_bytes=64 * PAGE_SIZE)
        t0 = machine.clock.now
        machine.hypercall(Hypercall.RELEASE)
        assert machine.clock.now > t0

    def test_on_restore_callbacks_fire(self):
        machine = Machine(memory_bytes=64 * PAGE_SIZE)
        fired = []
        machine.on_restore(lambda: fired.append(1))
        machine.capture_root()
        machine.restore_root()
        machine.create_incremental()
        machine.restore_incremental()
        assert len(fired) == 2

    def test_stats_merge(self):
        machine = Machine(memory_bytes=64 * PAGE_SIZE)
        machine.capture_root()
        machine.memory.write(0, b"x")
        machine.restore_root()
        stats = machine.stats()
        assert stats["root_restores"] == 1
        assert stats["total_pages"] == 64
        assert stats["pages_ever_dirtied"] >= 1


class TestMiscApi:
    def setup_method(self):
        self.machine = make_machine()
        self.kernel = Kernel(self.machine)
        self.proc = self.kernel.spawn(EchoServer(50))
        self.kernel.run()
        self.api = self.kernel.api_for(self.proc.pid)

    def test_sleep_advances_clock_and_rtc(self):
        rtc_before = self.machine.devices.rtc.epoch_us
        t0 = self.machine.clock.now
        self.api.sleep(1.5)
        assert self.machine.clock.now - t0 >= 1.5
        assert self.machine.devices.rtc.epoch_us - rtc_before == 1_500_000

    def test_time_reads_rtc(self):
        before = self.api.time()
        self.api.sleep(2.0)
        assert self.api.time() - before == pytest.approx(2.0, abs=0.01)

    def test_log_writes_serial(self):
        self.api.log("booted")
        assert b"booted\n" in b"".join(self.machine.devices.serial.tx_buffer)

    def test_getpid(self):
        assert self.api.getpid() == self.proc.pid

    def test_select_and_poll_agree(self):
        fd = self.proc.program.listen_fd
        assert self.api.select([fd, 123]) == self.api.poll_fds([fd, 123])

    def test_dup2_replaces_target(self):
        fd = self.proc.program.listen_fd
        new_fd = self.api.dup(fd)
        other = self.api.dup2(fd, new_fd)
        assert other == new_fd
        self.api.close(new_fd)
        # Original still functional.
        assert self.kernel.external_connect(50)

    def test_exit_closes_everything(self):
        self.api.exit(0)
        assert not self.proc.alive
        assert len(self.proc.fdtable) == 0
        with pytest.raises(GuestError) as exc:
            self.kernel.external_connect(50)
        assert exc.value.errno is Errno.ECONNREFUSED
