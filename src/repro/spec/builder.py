"""The meta-programmed seed-authoring library (§3.5, §4.4).

"This converter consists of a library that consumes Nyx's format
specifications.  It uses meta programming to create Python functions
for each opcode.  When we call those functions, the builder object
logs each invocation. [...] Each function logs the arguments and
returns tracking objects that know which function call returned them."

Usage (Listing 2 of the paper)::

    b = Builder(spec)
    con = b.connection()
    b.packet(con, b"HTTP/1.1 200 OK")
    b.packet(con, b"Content-Type: text/html")
    ops = b.build()          # or b.build_bytecode() for the flat form
"""

from __future__ import annotations

from typing import Any, List

from repro.spec.bytecode import Op, OpSequence, serialize, validate
from repro.spec.nodes import NodeType, Spec, SpecError


class TrackedValue:
    """A value returned by a builder call; knows its producing call."""

    __slots__ = ("builder", "value_index", "edge_name", "op_index")

    def __init__(self, builder: "Builder", value_index: int,
                 edge_name: str, op_index: int) -> None:
        self.builder = builder
        self.value_index = value_index
        self.edge_name = edge_name
        self.op_index = op_index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<%s #%d from op %d>" % (self.edge_name, self.value_index,
                                        self.op_index)


class Builder:
    """Records a graph of opcode invocations and flattens it to input.

    Every node type in the spec becomes a method on the builder (the
    meta-programming the paper describes): positional arguments are
    first the borrowed/consumed :class:`TrackedValue` handles, then the
    data field values.
    """

    def __init__(self, spec: Spec) -> None:
        self.spec = spec
        self._ops: OpSequence = []
        self._values: List[TrackedValue] = []
        for node in spec.node_types:
            self._install(node)

    def _install(self, node: NodeType) -> None:
        def call(*args: Any) -> Any:
            return self._invoke(node, args)
        call.__name__ = node.name
        call.__doc__ = "Log one %r opcode invocation." % node.name
        if hasattr(self, node.name):
            raise SpecError(
                "node name %r collides with a Builder attribute" % node.name)
        setattr(self, node.name, call)

    def _invoke(self, node: NodeType, args: tuple) -> Any:
        n_operands = node.arity
        operands = args[:n_operands]
        data_args = args[n_operands:]
        if len(operands) != n_operands:
            raise SpecError(
                "%s() needs %d operand(s), got %d"
                % (node.name, n_operands, len(operands)))
        if len(data_args) != len(node.data):
            raise SpecError(
                "%s() needs %d data arg(s), got %d"
                % (node.name, len(node.data), len(data_args)))
        refs = []
        expected = list(node.borrows) + list(node.consumes)
        for operand, edge in zip(operands, expected):
            if not isinstance(operand, TrackedValue):
                raise SpecError(
                    "%s(): operand %r is not a tracked value"
                    % (node.name, operand))
            if operand.builder is not self:
                raise SpecError("%s(): operand from a different builder" % node.name)
            if operand.edge_name != edge.name:
                raise SpecError(
                    "%s(): operand has type %s, expected %s"
                    % (node.name, operand.edge_name, edge.name))
            refs.append(operand.value_index)
        op_index = len(self._ops)
        self._ops.append(Op(node.name, tuple(refs), tuple(data_args)))
        outputs = []
        for edge in node.outputs:
            tracked = TrackedValue(self, len(self._values), edge.name, op_index)
            self._values.append(tracked)
            outputs.append(tracked)
        if not outputs:
            return None
        if len(outputs) == 1:
            return outputs[0]
        return tuple(outputs)

    def snapshot(self) -> None:
        """Inject the special snapshot marker opcode (§4.3)."""
        self._ops.append(Op("snapshot"))

    def build(self) -> OpSequence:
        """Validate and return the recorded op sequence."""
        validate(self.spec, self._ops)
        return list(self._ops)

    def build_bytecode(self) -> bytes:
        """Serialize the recorded graph to flat Nyx bytecode."""
        return serialize(self.spec, self._ops)

    def __len__(self) -> int:
        return len(self._ops)
