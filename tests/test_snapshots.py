"""Tests for root and incremental whole-VM snapshots (§4.2)."""

import pytest

from repro.vm.machine import Machine
from repro.vm.memory import PAGE_SIZE
from repro.vm.snapshot import REMIRROR_PERIOD, SnapshotError


def small_machine() -> Machine:
    return Machine(memory_bytes=256 * PAGE_SIZE, disk_sectors=64)


class TestRootSnapshot:
    def test_restore_root_rewinds_memory(self):
        m = small_machine()
        m.memory.write(0, b"original")
        m.capture_root()
        m.memory.write(0, b"clobber!")
        m.memory.write(50 * PAGE_SIZE, b"more")
        reset = m.restore_root()
        assert m.memory.read(0, 8) == b"original"
        assert m.memory.read(50 * PAGE_SIZE, 4) == bytes(4)
        assert reset == 2

    def test_restore_root_rewinds_devices(self):
        m = small_machine()
        m.capture_root()
        m.devices.nic.on_rx(100)
        m.devices.timer.tick()
        m.restore_root()
        assert m.devices.nic.rx_packets == 0
        assert m.devices.timer.ticks == 0

    def test_restore_root_rewinds_disk(self):
        m = small_machine()
        m.disk.write_sector(5, b"a" * 512)
        m.capture_root()
        m.disk.write_sector(5, b"b" * 512)
        m.disk.write_sector(6, b"c" * 512)
        m.restore_root()
        assert m.disk.read_sector(5) == b"a" * 512
        assert m.disk.read_sector(6) == bytes(512)

    def test_restore_without_root_raises(self):
        m = small_machine()
        with pytest.raises(SnapshotError):
            m.restore_root()

    def test_repeated_restores_are_idempotent(self):
        m = small_machine()
        m.memory.write(0, b"base")
        m.capture_root()
        for i in range(5):
            m.memory.write(0, b"dirty %d" % i)
            m.restore_root()
            assert m.memory.read(0, 4) == b"base"

    def test_second_restore_touches_nothing(self):
        m = small_machine()
        m.capture_root()
        m.memory.write(0, b"x")
        assert m.restore_root() == 1
        assert m.restore_root() == 0


class TestIncrementalSnapshot:
    def test_restore_incremental_rewinds_to_midpoint(self):
        m = small_machine()
        m.capture_root()
        m.memory.write(0, b"prefix")           # packets 1..k
        m.create_incremental()
        m.memory.write(0, b"suffix")           # mutated tail
        m.memory.write(10 * PAGE_SIZE, b"junk")
        m.restore_incremental()
        assert m.memory.read(0, 6) == b"prefix"
        assert m.memory.read(10 * PAGE_SIZE, 4) == bytes(4)

    def test_incremental_then_root_restores_cleanly(self):
        m = small_machine()
        m.memory.write(0, b"root state")
        m.capture_root()
        m.memory.write(0, b"prefixed..")
        m.create_incremental()
        m.memory.write(0, b"mutated...")
        m.restore_incremental()
        m.restore_root()
        assert m.memory.read(0, 10) == b"root state"

    def test_many_cycles_from_incremental(self):
        m = small_machine()
        m.capture_root()
        m.memory.write(0, b"prefix")
        m.create_incremental()
        for i in range(50):
            m.memory.write(0, b"test%02d" % i)
            m.memory.write((i % 20 + 1) * PAGE_SIZE, b"scratch")
            m.restore_incremental()
            assert m.memory.read(0, 6) == b"prefix"

    def test_restore_incremental_without_create_raises(self):
        m = small_machine()
        m.capture_root()
        with pytest.raises(SnapshotError):
            m.restore_incremental()

    def test_new_incremental_replaces_old(self):
        m = small_machine()
        m.capture_root()
        m.memory.write(0, b"first")
        m.create_incremental()
        m.restore_root()
        m.memory.write(0, b"second")
        m.create_incremental()
        m.memory.write(0, b"garbage")
        m.restore_incremental()
        assert m.memory.read(0, 6) == b"second"

    def test_incremental_captures_devices_and_disk(self):
        m = small_machine()
        m.capture_root()
        m.devices.nic.on_rx(10)
        m.disk.write_sector(3, b"p" * 512)
        m.create_incremental()
        m.devices.nic.on_rx(10)
        m.disk.write_sector(3, b"q" * 512)
        m.restore_incremental()
        assert m.devices.nic.rx_packets == 1
        assert m.disk.read_sector(3) == b"p" * 512

    def test_remirror_keeps_correctness(self):
        m = small_machine()
        m.capture_root()
        for i in range(REMIRROR_PERIOD + 5):
            m.memory.write(0, b"gen%06d" % i)
            m.create_incremental()
            m.memory.write(0, b"scribble..")
            m.restore_incremental()
            assert m.memory.read(0, 9) == b"gen%06d" % i
            m.restore_root()
        assert m.snapshots.stats.remirrors >= 1

    def test_reset_for_next_test_prefers_incremental(self):
        m = small_machine()
        m.capture_root()
        m.memory.write(0, b"prefix")
        m.create_incremental()
        m.memory.write(0, b"tail")
        m.reset_for_next_test()
        assert m.memory.read(0, 6) == b"prefix"
        m.snapshots.discard_incremental()
        m.reset_for_next_test()
        assert m.memory.read(0, 6) == bytes(6)


class TestSharedRootSnapshot:
    def test_adopt_root_copies_state(self):
        a = small_machine()
        a.memory.write(0, b"golden")
        root = a.capture_root()
        b = small_machine()
        b.adopt_root(root)
        assert b.memory.read(0, 6) == b"golden"

    def test_adopted_instances_are_independent(self):
        a = small_machine()
        a.memory.write(0, b"golden")
        root = a.capture_root()
        b = small_machine()
        b.adopt_root(root)
        b.memory.write(0, b"private-b")
        a.memory.write(0, b"private-a")
        b.restore_root()
        assert b.memory.read(0, 6) == b"golden"
        assert a.memory.read(0, 9) == b"private-a"

    def test_private_pages_stay_small(self):
        a = small_machine()
        root = a.capture_root()
        b = small_machine()
        b.adopt_root(root)
        b.memory.write(0, b"x")
        b.memory.write(7 * PAGE_SIZE, b"y")
        # Shared instance owns only its two diverged pages.
        assert b.snapshots.private_page_count() <= 4

    def test_geometry_mismatch_rejected(self):
        a = small_machine()
        root = a.capture_root()
        b = Machine(memory_bytes=128 * PAGE_SIZE, disk_sectors=64)
        with pytest.raises(SnapshotError):
            b.adopt_root(root)


class TestSnapshotAccounting:
    def test_clock_charged_for_resets(self):
        m = small_machine()
        m.capture_root()
        t0 = m.clock.now
        for _ in range(10):
            m.memory.write(0, b"dirty")
            m.restore_root()
        assert m.clock.now > t0

    def test_reset_cost_scales_with_dirty_pages(self):
        m = small_machine()
        m.capture_root()
        m.memory.write(0, b"x")
        t0 = m.clock.now
        m.restore_root()
        small_cost = m.clock.now - t0
        for page in range(100):
            m.memory.write(page * PAGE_SIZE, b"x")
        t1 = m.clock.now
        m.restore_root()
        large_cost = m.clock.now - t1
        assert large_cost > small_cost

    def test_stats_counters(self):
        m = small_machine()
        m.capture_root()
        m.memory.write(0, b"a")
        m.create_incremental()
        m.memory.write(0, b"b")
        m.restore_incremental()
        m.restore_root()
        stats = m.stats()
        assert stats["incremental_creates"] == 1
        assert stats["incremental_restores"] == 1
        assert stats["root_restores"] == 1
