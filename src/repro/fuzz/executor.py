"""Test-case execution inside the VM.

The executor interprets input bytecode op by op, driving the
interceptor (connections, packets, EOF), the guest scheduler and the
snapshot machinery:

* ``run_full`` executes an input from the top, optionally creating the
  incremental snapshot after a chosen packet (the policy's pick, or an
  explicit ``snapshot`` marker op in the input);
* ``run_suffix`` re-executes only the ops after the snapshot point
  against the incremental snapshot — the §3.4 fast path;
* after every execution the VM is reset to whichever snapshot is
  active, with the reset cost charged to the simulated clock.

**Prefix-trace elision.**  Execution here is deterministic: replaying
the same op prefix from the same snapshot produces the same site
stream, byte for byte.  The executor exploits that to stop paying the
tracer for work a previous execution already recorded:

* every traced from-root run records per-op *boundary marks* into its
  packed site stream (a :class:`TraceRecording`); the fuzzer registers
  recordings for corpus entries via :meth:`NyxExecutor.remember_trace`;
* when a mutated child shares an op prefix with its parent's
  recording, that prefix replays with the tracer suspended and
  :meth:`~repro.coverage.tracer.TracerCore.take_trace` is seeded with
  the recorded prefix fold instead — the combined trace is
  byte-identical to a fully-traced run (pinned by the differential
  and property suites);
* suffix runs elide the unmutated sub-prefix after the snapshot point
  the same way, against the snapshot-capture run's recording held in
  :class:`_SuffixState` — so the fold is cached once per snapshot
  generation and replaced with the snapshot (placement moves and
  ``finish_snapshot_cycle`` drop it with the state);
* recordings are invalidated wholesale whenever snapshot state is in
  doubt — a corrupted restore (heal/rebuild) or degradation to
  root-only — and elision disarms entirely while a fault injector is
  active (injected faults make replays non-deterministic).

Targets with non-network vocabularies (e.g. Super Mario's button
frames) register extra op handlers.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.coverage.tracer import TracerCore
from repro.emu.interceptor import Interceptor
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashReport, GuestError
from repro.guestos.kernel import Kernel
from repro.vm.machine import Machine
from repro.vm.snapshot import SnapshotCorruption

#: Handler signature: (executor, op, resolved connection id) -> None.
OpHandler = Callable[["NyxExecutor", object, Optional[int]], None]

#: Parent recordings kept per executor (LRU) for from-root elision.
RECORDING_CACHE_LIMIT = 128


@dataclass
class TraceRecording:
    """Replayable trace of one from-root execution.

    ``marks[i]`` is the site-stream position just before op ``i``
    executed; one final mark is appended where the op loop exited, so
    ``len(marks) - 1`` ops have known boundaries.  ``packed`` is the
    full packed stream (including the post-loop drain), ``ijon_marks``
    the cumulative IJON counts at each boundary (None where empty).
    All fields are treated as immutable once ``packed`` is set.
    """

    ops: Tuple
    marks: List[int] = field(default_factory=list)
    ijon_marks: List[Optional[Dict[int, int]]] = field(default_factory=list)
    packed: Optional[bytes] = None
    final_ijon: Optional[Dict[int, int]] = None
    #: True when the recorded run executed every op without crash,
    #: timeout or max-ops clamping — required for whole-run reuse.
    complete: bool = False
    #: Boundary index where a *policy-chosen* snapshot charged the sim
    #: clock mid-run (None: no such charge).  A replay without that
    #: charge may lawfully diverge afterwards, so elision against this
    #: recording stops here.  Marker-op snapshots need no clamp — they
    #: fire identically in every run of the same ops.
    charge_index: Optional[int] = None


@dataclass
class ExecResult:
    """Outcome of one test-case execution."""

    trace: Dict[int, int] = field(default_factory=dict)
    crash: Optional[CrashReport] = None
    exec_time: float = 0.0
    ops_executed: int = 0
    packets_sent: int = 0
    #: Packets the target actually read (recv'd) during the run —
    #: inputs that kill or stall the target stop consuming early.
    packets_consumed: int = 0
    #: True when the run only replayed a suffix from the incremental
    #: snapshot.
    suffix_run: bool = False
    #: True when the watchdog stopped the run: the target exceeded its
    #: per-exec simulated-time budget (the paper's timeout class).
    timed_out: bool = False
    #: Boundary-marked trace of this run (from-root traced runs only);
    #: the fuzzer hands it to :meth:`NyxExecutor.remember_trace` when
    #: the input joins the corpus.
    recording: Optional[TraceRecording] = None


@dataclass
class _SuffixState:
    """Captured host-side interceptor state at the snapshot point."""

    resume_index: int
    conns: Dict
    sid_to_conn: Dict
    values_produced: int
    #: The input whose prefix produced the snapshot, and the op index
    #: the snapshot was taken at — enough to rebuild the incremental
    #: snapshot from the root if a restore finds it corrupted.
    base_input: Optional[FuzzInput] = None
    snapshot_op_index: Optional[int] = None
    #: The capture run's trace recording: the per-snapshot-generation
    #: fold cache that suffix runs elide their unmutated sub-prefix
    #: against.  Lives and dies with this state, so placement moves and
    #: rebuilds can never serve a stale fold (None after an untraced
    #: rebuild replay: elision simply stays off until the next capture).
    capture_rec: Optional[TraceRecording] = None


class NyxExecutor:
    """Executes inputs against one target VM."""

    def __init__(self, machine: Machine, kernel: Kernel,
                 interceptor: Interceptor, tracer: Optional[TracerCore] = None,
                 max_ops: int = 512,
                 exec_timeout: Optional[float] = None,
                 max_snapshot_rebuilds: int = 3,
                 trace_elision: bool = True,
                 max_chain_depth: int = 1) -> None:
        self.machine = machine
        self.kernel = kernel
        self.interceptor = interceptor
        self.tracer = tracer
        self.max_ops = max_ops
        #: Deepest overlay chain this executor will stack (1 = the
        #: classic single incremental snapshot; markers and multi-point
        #: placements only chain when this allows it).
        self.max_chain_depth = max_chain_depth
        #: Watchdog budget: simulated seconds one execution may burn
        #: before it is stopped and classified as a timeout.  ``None``
        #: disables the watchdog (trusted targets).
        self.exec_timeout = exec_timeout
        #: Consecutive corrupted-restore rebuilds tolerated before the
        #: executor degrades to root-only execution.
        self.max_snapshot_rebuilds = max_snapshot_rebuilds
        #: Master switch for prefix-trace elision (tests compare
        #: elided vs fully-traced executions through this).
        self.trace_elision = trace_elision
        self.execs = 0
        #: Incremental snapshots rebuilt from the root after a restore
        #: found them corrupted (self-healing).
        self.snapshot_rebuilds = 0
        #: Bottom of the degradation ladder: incremental snapshots kept
        #: failing validation, so every run now starts from the root.
        self.degraded_root_only = False
        #: Host-side elision counters (stamped into CampaignStats).
        #: Outside stats_checksum by design; resume recounts from 0.
        self.prefix_elisions = 0  # nyx: state[ephemeral]
        self.prefix_elided_ops = 0  # nyx: state[ephemeral]
        self.elision_invalidations = 0  # nyx: state[ephemeral]
        self._rebuild_failures = 0
        self._suffix: Optional[_SuffixState] = None
        #: Chain nodes, shallow to deep; node ``i`` is chain depth
        #: ``i + 1`` and ``_suffix`` aliases the deepest one.
        self._chain_nodes: List[_SuffixState] = []
        self._recordings: "OrderedDict[int, TraceRecording]" = OrderedDict()
        self.recording_cache_limit = RECORDING_CACHE_LIMIT
        self._rec_in_progress: Optional[TraceRecording] = None
        self.op_handlers: Dict[str, OpHandler] = {
            "connection": _handle_connection,
            "packet": _handle_packet,
            "shutdown": _handle_shutdown,
        }
        if tracer is not None:
            kernel.coverage = tracer

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------

    def run_full(self, input_: FuzzInput,  # nyx: hot
                 snapshot_after_packet: Optional[int] = None,
                 parent_key: Optional[int] = None,
                 snapshot_after_packets: Optional[List[int]] = None
                 ) -> ExecResult:
        """Execute the whole input from the active snapshot (root).

        ``snapshot_after_packet`` is a 0-based position into the
        input's packet list; the incremental snapshot is created right
        after that packet is consumed, and subsequent ``run_suffix``
        calls replay only the remainder.  ``snapshot_after_packets``
        generalizes it to an ascending list of positions: the first
        becomes the incremental snapshot, each later one a chain
        overlay stacked on top (a one-element list is byte-identical to
        the scalar form).

        ``parent_key`` names a recording registered through
        :meth:`remember_trace`; any op prefix the input shares with it
        replays with the tracer elided.
        """
        self._suffix = None
        self._chain_nodes = []
        self.machine.snapshots.discard_incremental()
        snapshot_op_index = None
        later_ops: List[int] = []
        if snapshot_after_packets:
            packets = input_.packet_indices()
            points = sorted({packets[pos] for pos in snapshot_after_packets
                             if 0 <= pos < len(packets)})
            points = points[:self.max_chain_depth]
            if points:
                snapshot_op_index = points[0]
                later_ops = points[1:]
        elif snapshot_after_packet is not None:
            packets = input_.packet_indices()
            if 0 <= snapshot_after_packet < len(packets):
                snapshot_op_index = packets[snapshot_after_packet]
        parent_rec = None
        if parent_key is not None:
            parent_rec = self._recordings.get(parent_key)
            if parent_rec is not None:
                self._recordings.move_to_end(parent_key)
        return self._run(input_, start=0, snapshot_op_index=snapshot_op_index,
                         later_snapshot_ops=later_ops,
                         parent_rec=parent_rec, record=True)

    def run_suffix(self, input_: FuzzInput,  # nyx: hot
                   depth: Optional[int] = None) -> ExecResult:
        """Execute only the ops after a chain node's snapshot point.

        ``depth`` picks the chain node to resume from (1 = the
        incremental snapshot; default: the deepest node).  The executor
        then upgrades to the *deepest* node at or above ``depth`` whose
        op prefix the input still matches — resuming closer to the
        mutation site executes strictly fewer ops for the same result.
        Switching nodes between runs costs one chain restore; staying
        on the previous node costs nothing extra.

        Self-healing: if the last reset found a snapshot layer
        corrupted (each validates its CoW pages by checksum), the
        prefix is replayed from the root to rebuild the whole chain.
        After ``max_snapshot_rebuilds`` consecutive failures the
        executor degrades to root-only execution instead of thrashing.
        """
        nodes = self._chain_nodes
        if not nodes:
            raise RuntimeError("no incremental snapshot to fuzz from")
        if not self.degraded_root_only:
            self._heal_incremental(nodes[-1])
            nodes = self._chain_nodes
        if self.degraded_root_only or not nodes:
            # Bottom of the ladder: run the whole input from the root.
            return self._run(input_, start=0, snapshot_op_index=None)
        if depth is None or depth > len(nodes):
            depth = len(nodes)
        elif depth < 1:
            depth = 1
        depth = self._deepest_matching(input_, depth)
        state = nodes[depth - 1]
        snapshots = self.machine.snapshots
        if snapshots.chain_depth > 1 and snapshots.base_depth != depth:
            # Hop to the requested node; the next end-of-run reset then
            # returns here for free (it restores the current base).
            try:
                self.machine.restore_to_depth(depth)
            except SnapshotCorruption:
                # A layer failed validation mid-hop: the manager tore
                # the whole chain down.  Fall back to the trustworthy
                # root and re-enter the heal/rebuild/degrade ladder,
                # exactly like a corrupted end-of-run reset.
                self.machine.snapshot_corruptions += 1
                self.machine.restore_root()
                return self.run_suffix(input_, depth=depth)
        # Rebind the interceptor's host-side view of the guest sockets
        # exactly as it was at the snapshot point.  Suffix runs skip
        # reset_for_test (the snapshot point is mid-test), so stale
        # surface sockets from the previous suffix run are pruned here.
        self.interceptor._conns = copy.deepcopy(state.conns)
        self.interceptor._sid_to_conn = dict(state.sid_to_conn)
        self.interceptor.reset_stale_surface()
        result = self._run(input_, start=state.resume_index,
                           snapshot_op_index=None,
                           values_preassigned=state.values_produced,
                           parent_rec=state.capture_rec)
        result.suffix_run = True
        return result

    def _deepest_matching(self, input_: FuzzInput, depth: int) -> int:
        """Deepest chain depth >= ``depth`` whose captured op prefix the
        input still matches (mutations past a node's snapshot point
        leave its prefix valid)."""
        nodes = self._chain_nodes
        ops = input_.ops
        n_ops = len(ops)
        for i in range(len(nodes) - 1, depth - 1, -1):
            node = nodes[i]
            base = node.base_input
            resume = node.resume_index
            if base is None or n_ops < resume:
                continue
            base_ops = base.ops
            match = True
            for k in range(resume):
                a = ops[k]
                b = base_ops[k]
                if a is not b and a != b:
                    match = False
                    break
            if match:
                return i + 1
        return depth

    # ------------------------------------------------------------------
    # trace recordings (prefix elision)
    # ------------------------------------------------------------------

    def remember_trace(self, key: int, result: ExecResult,
                       replace: bool = True) -> bool:
        """Register a run's recording for future prefix elision.

        The fuzzer calls this when an input joins the corpus, keyed by
        its entry id; children mutated from that entry then pass the
        key to :meth:`run_full`.  LRU-bounded.  ``replace=False`` keeps
        an existing recording (e.g. an unclamped discovery-run
        recording beats a charge-clamped capture-run one).
        """
        rec = result.recording
        if rec is None or rec.packed is None:
            return False
        recordings = self._recordings
        if not replace and key in recordings:
            recordings.move_to_end(key)
            return False
        recordings[key] = rec
        recordings.move_to_end(key)
        while len(recordings) > self.recording_cache_limit:
            recordings.popitem(last=False)
        return True

    def invalidate_trace_recordings(self) -> None:
        """Drop every cached fold: snapshot state is in doubt.

        Called on the heal/rebuild/degrade paths — a corrupted restore
        means *something* misbehaved, and a cheap full invalidation
        beats reasoning about which recordings could have been
        affected.
        """
        self._recordings.clear()
        for node in self._chain_nodes:
            node.capture_rec = None
        if self._suffix is not None:
            self._suffix.capture_rec = None
        self.elision_invalidations += 1

    # ------------------------------------------------------------------
    # durability (checkpoint/resume)
    # ------------------------------------------------------------------

    def durable_state(self) -> dict:
        """Resumable executor state (see :mod:`repro.fuzz.journal`).

        Only the counters that shape future behaviour travel: the exec
        count, the degradation ladder (rebuild failures decide when the
        executor falls back to root-only execution) and the snapshot
        manager's sim-charge cursors.  The trace-recording cache and
        suffix state are host-side caches, empty at every step boundary
        or rebuilt on demand, and never cross a checkpoint.
        """
        return {"execs": self.execs,
                "snapshot_rebuilds": self.snapshot_rebuilds,
                "degraded_root_only": self.degraded_root_only,
                "rebuild_failures": self._rebuild_failures,
                "snapshots": self.machine.snapshots.snapshot_state()}

    def restore_durable_state(self, state: dict) -> None:
        """Adopt a checkpointed executor state (inverse of
        :meth:`durable_state`)."""
        self.execs = int(state["execs"])
        self.snapshot_rebuilds = int(state["snapshot_rebuilds"])
        self.degraded_root_only = bool(state["degraded_root_only"])
        self._rebuild_failures = int(state["rebuild_failures"])
        self.machine.snapshots.restore_state(state["snapshots"])
        self._suffix = None
        self._chain_nodes = []
        self._recordings.clear()
        self._rec_in_progress = None

    def _elision_blocked(self) -> bool:
        """Elision disarms while fault injection is active: injected
        faults fire on deterministic schedules of their *own*, so a
        replayed prefix may diverge from its recording."""
        if not self.trace_elision or self.tracer is None:
            return True
        if getattr(self.interceptor, "injector", None) is not None:
            return True
        if getattr(self.machine.snapshots, "injector", None) is not None:
            return True
        return False

    def _plan_elision(self, ops, start: int, end: int,
                      rec: TraceRecording) -> Optional[Tuple[int, bool]]:
        """How far the input's ops match the recording.

        Returns ``(resume_index, whole_run)``: the prefix
        ``ops[start:resume_index]`` is byte-covered by the recording.
        ``whole_run`` means the entire execution (including the
        post-loop drain) is covered, so the tracer never resumes.
        """
        if rec.packed is None:
            return None
        rec_ops = rec.ops
        limit = min(end, len(rec_ops), len(rec.marks) - 1)
        if rec.charge_index is not None:
            limit = min(limit, rec.charge_index)
        k = start
        while k < limit:
            a = ops[k]
            b = rec_ops[k]
            if a is not b and a != b:
                break
            k += 1
        if k <= start:
            return None
        whole = (k == end == len(ops) and len(ops) == len(rec_ops)
                 and rec.complete and rec.charge_index is None)
        return k, whole

    def _elide_resume(self, rec: TraceRecording, start: int,
                      until: Optional[int]) -> None:
        """Seed the tracer with the recorded fold for ``[start, until)``
        (``until=None``: through the end of the recorded stream)."""
        marks = rec.marks
        lo = marks[start]
        if until is None:
            prefix = rec.packed[lo * 8:]
            ijon_at = rec.final_ijon
            elided = len(rec.ops) - start
        else:
            prefix = rec.packed[lo * 8:marks[until] * 8]
            ijon_at = rec.ijon_marks[until]
            elided = until - start
        ijon_seed = ijon_at
        if ijon_at and start > 0:
            base = rec.ijon_marks[start]
            if base:
                ijon_seed = {edge: count - base.get(edge, 0)
                             for edge, count in ijon_at.items()
                             if count - base.get(edge, 0) > 0}
        self.tracer.elide_resume(prefix, ijon_seed)
        self.prefix_elisions += 1
        self.prefix_elided_ops += elided

    def _heal_incremental(self, state: _SuffixState) -> _SuffixState:
        """Ensure a valid snapshot chain exists, rebuilding from the
        root as often as the rebuild budget allows.

        ``state`` is the deepest chain node; the replay re-creates
        every node's snapshot point (overlay corruption tears down the
        whole chain, so rebuilds always start from nothing).
        """
        snapshots = self.machine.snapshots
        invalidated = False
        while not snapshots.incremental_active:
            if not invalidated:
                invalidated = True
                self.invalidate_trace_recordings()
            self._rebuild_failures += 1
            if (self._rebuild_failures > self.max_snapshot_rebuilds
                    or state.base_input is None):
                self.degraded_root_only = True
                return state
            self.snapshot_rebuilds += 1
            points = [node.resume_index - 1 for node in self._chain_nodes
                      if node.resume_index > 0]
            if not points and state.snapshot_op_index is not None:
                points = [state.snapshot_op_index]
            self._chain_nodes = []
            # Replay exactly the prefix that produced the chain; the
            # trailing reset restores the fresh deepest snapshot
            # (or corrupts it again, in which case we loop).  The
            # replay's trace is discarded, so it runs untraced.
            self._run(state.base_input, start=0,
                      snapshot_op_index=points[0] if points else None,
                      later_snapshot_ops=points[1:],
                      stop_index=state.resume_index, traced=False)
            state = self._suffix or state
        self._rebuild_failures = 0
        return state

    @property
    def suffix_resume_index(self) -> Optional[int]:
        return self._suffix.resume_index if self._suffix else None

    # ------------------------------------------------------------------
    # core interpreter
    # ------------------------------------------------------------------

    def _run(self, input_: FuzzInput, start: int,  # nyx: hot
             snapshot_op_index: Optional[int],
             values_preassigned: int = 0,
             stop_index: Optional[int] = None,
             parent_rec: Optional[TraceRecording] = None,
             record: bool = False,
             traced: bool = True,
             later_snapshot_ops: Optional[List[int]] = None) -> ExecResult:
        machine = self.machine
        kernel = self.kernel
        result = ExecResult()
        t0 = machine.clock.now
        deadline = None
        if self.exec_timeout is not None:
            # Watchdog: the budget binds the guest scheduler too, so a
            # stalled target stops mid-kernel.run instead of spinning
            # its rounds out.
            deadline = t0 + self.exec_timeout
            kernel.watchdog = lambda: machine.clock.now >= deadline
        packets_before = self.interceptor.stats_packets
        tracer = self.tracer if traced else None
        if tracer is not None:
            tracer.begin()
        elif self.tracer is not None:
            # Untraced replay (snapshot rebuild): the trace is
            # discarded, so never pay collection.  begin() un-suspends.
            self.tracer.begin()
            self.tracer.elide_suspend()
        ops = input_.ops
        end = min(len(ops), start + self.max_ops)
        if stop_index is not None:
            end = min(end, stop_index)
        # Prefix-trace elision: execute the recorded prefix with the
        # tracer suspended, then seed its fold back in at the resume
        # boundary.  Execution itself (state, sim clock, crashes) is
        # unaffected — only collection is skipped.
        elide_until: Optional[int] = None
        elide_whole = False
        suspended = False
        if (tracer is not None and parent_rec is not None
                and stop_index is None and not self._elision_blocked()):
            # A policy-chosen snapshot charges the sim clock mid-run
            # (the recording's run had no such charge), so behavior
            # past the snapshot point may lawfully diverge: elide at
            # most up to and including the snapshot op, never the
            # whole run.
            plan_end = end
            if snapshot_op_index is not None:
                plan_end = min(plan_end, snapshot_op_index + 1)
            plan = self._plan_elision(ops, start, plan_end, parent_rec)
            if plan is not None:
                elide_until, elide_whole = plan
                if snapshot_op_index is not None:
                    elide_whole = False
                tracer.elide_suspend()
                suspended = True
        rec: Optional[TraceRecording] = None
        if record and tracer is not None and start == 0 and stop_index is None:
            rec = TraceRecording(ops=tuple(ops))
        self._rec_in_progress = rec
        if start == 0:
            self.interceptor.reset_for_test()
        later_points = list(later_snapshot_ops) if later_snapshot_ops else []
        took_first_point = False
        values = values_preassigned
        spec_nodes = self.op_handlers
        reached = start
        for index in range(start, end):
            if rec is not None:
                if suspended:
                    rec.marks.append(parent_rec.marks[index])
                    rec.ijon_marks.append(parent_rec.ijon_marks[index])
                else:
                    rec.marks.append(tracer.stream_pos()
                                     + tracer.prefix_site_count)
                    rec.ijon_marks.append(tracer.ijon_snapshot())
            if suspended and not elide_whole and index == elide_until:
                self._elide_resume(parent_rec, start, index)
                suspended = False
            op = ops[index]
            if op.is_snapshot_marker():
                snapshots = machine.snapshots
                if (self.max_chain_depth > 1 and snapshots.incremental_active
                        and self._chain_nodes
                        and snapshots.base_depth == snapshots.chain_depth):
                    # Chain-enabled marker: stack instead of replacing;
                    # past the depth cap, fold the deepest layer first
                    # so the chain stays bounded.
                    if snapshots.chain_depth >= self.max_chain_depth:
                        snapshots.commit_overlay()
                        self._chain_nodes.pop(-2)
                    self._push_chain_node(input_, index + 1, values)
                else:
                    self._take_incremental(input_, index + 1, values)
                reached = index + 1
                continue
            handler = spec_nodes.get(op.node)
            if handler is not None:
                conn = op.refs[0] if op.refs else None
                # Per-op fault isolation is the contract: one bad op
                # must not abort the rest of the test case, so the
                # handler genuinely needs its own except scope.
                try:  # nyx: allow[NYX074]
                    handler(self, op, conn)
                except (GuestError, KeyError, ValueError):
                    # Ill-formed mutation (bad conn ref, closed conn):
                    # the op is a no-op, like a packet to a dead socket.
                    pass
            values += _outputs_of(op)
            result.ops_executed += 1
            if op.node == "packet":
                result.packets_sent += 1
            kernel.run()
            reached = index + 1
            if kernel.crash_reports:
                break
            if deadline is not None and machine.clock.now >= deadline:
                result.timed_out = True
                break
            if snapshot_op_index is not None and index == snapshot_op_index:
                if took_first_point:
                    # A later placement point: stack a chain overlay on
                    # the snapshot below it.
                    self._push_chain_node(input_, index + 1, values)
                else:
                    self._take_incremental(input_, index + 1, values)
                    took_first_point = True
                    if rec is not None:
                        rec.charge_index = index + 1
                snapshot_op_index = (later_points.pop(0) if later_points
                                     else None)
        if rec is not None:
            # Final boundary: where the op loop exited.
            if suspended:
                rec.marks.append(parent_rec.marks[reached])
                rec.ijon_marks.append(parent_rec.ijon_marks[reached])
            else:
                rec.marks.append(tracer.stream_pos()
                                 + tracer.prefix_site_count)
                rec.ijon_marks.append(tracer.ijon_snapshot())
        if suspended and not elide_whole:
            # The loop broke (crash/timeout — deterministically mirrored
            # from the recording) before the planned resume boundary:
            # seed what was covered and trace the drain live.
            self._elide_resume(parent_rec, start, reached)
            suspended = False
        if not result.timed_out:
            # Let the target finish pending work (responses, cleanup).
            kernel.run()
        kernel.watchdog = None
        if kernel.crash_reports:
            result.crash = kernel.crash_reports[0]
            kernel.crash_reports.clear()
        if suspended:
            # Whole-run elision: the recording covers the drain too.
            self._elide_resume(parent_rec, start, None)
            suspended = False
        if tracer is not None:
            result.trace = tracer.take_trace()
            if rec is not None:
                rec.packed = tracer.last_packed
                rec.final_ijon = tracer.ijon_snapshot()
                rec.complete = (reached == end == len(ops)
                                and result.crash is None
                                and not result.timed_out)
                result.recording = rec
        self._rec_in_progress = None
        result.exec_time = machine.clock.now - t0
        result.packets_consumed = (self.interceptor.stats_packets
                                   - packets_before)
        self.execs += 1
        # Reset for the next test: the state churn of this execution is
        # what the reset pays for.  (A timed-out or fault-ridden run is
        # wiped away exactly like any other — that is the whole point
        # of snapshot fuzzing.)
        kernel.flush_to_memory()
        machine.reset_for_next_test()
        return result

    def _take_incremental(self, input_: FuzzInput, resume_index: int,
                          values: int) -> None:
        """Create the secondary snapshot at the current position
        (replacing any existing chain)."""
        self.kernel.flush_to_memory()
        self.machine.create_incremental()
        state = _SuffixState(
            resume_index=resume_index,
            conns=copy.deepcopy(self.interceptor._conns),
            sid_to_conn=dict(self.interceptor._sid_to_conn),
            values_produced=values,
            base_input=input_.copy(),
            snapshot_op_index=resume_index - 1,
            capture_rec=self._rec_in_progress,
        )
        self._suffix = state
        self._chain_nodes = [state]

    def _push_chain_node(self, input_: FuzzInput, resume_index: int,
                         values: int) -> None:
        """Stack a chain overlay at the current position (a deeper
        sibling of :meth:`_take_incremental`)."""
        self.kernel.flush_to_memory()
        self.machine.push_overlay()
        state = _SuffixState(
            resume_index=resume_index,
            conns=copy.deepcopy(self.interceptor._conns),
            sid_to_conn=dict(self.interceptor._sid_to_conn),
            values_produced=values,
            base_input=input_.copy(),
            snapshot_op_index=resume_index - 1,
            capture_rec=self._rec_in_progress,
        )
        self._suffix = state
        self._chain_nodes.append(state)

    @property
    def chain_node_count(self) -> int:
        """Live chain nodes available to resume from."""
        return len(self._chain_nodes)

    def chain_resume_index(self, depth: int) -> Optional[int]:
        """Op index suffix runs from node ``depth`` resume at."""
        if 1 <= depth <= len(self._chain_nodes):
            return self._chain_nodes[depth - 1].resume_index
        return None

    def finish_snapshot_cycle(self) -> None:  # nyx: hot
        """Discard the snapshot chain and return to the root
        ("as soon as Nyx-Net wants to schedule another input, the
        incremental snapshot is discarded", §3.4)."""
        self._suffix = None
        self._chain_nodes = []
        self.machine.snapshots.discard_incremental()
        self.kernel.flush_to_memory()
        self.machine.restore_root()


def _outputs_of(op) -> int:
    """Connections produced by an op (default spec: connection=1)."""
    return 1 if op.node == "connection" else 0


# ----------------------------------------------------------------------
# default op handlers (the generic network spec)
# ----------------------------------------------------------------------


def _handle_connection(executor: NyxExecutor, op, conn: Optional[int]) -> None:
    # The new connection's id is the index of the value it produces,
    # which equals the number of connections opened so far this test.
    conn_id = len(executor.interceptor._conns)
    executor.interceptor.open_connection(conn_id)


def _handle_packet(executor: NyxExecutor, op, conn: Optional[int]) -> None:
    payload = op.args[0] if op.args else b""
    executor.interceptor.queue_packet(conn or 0, bytes(payload))


def _handle_shutdown(executor: NyxExecutor, op, conn: Optional[int]) -> None:
    executor.interceptor.close_connection(conn or 0)
