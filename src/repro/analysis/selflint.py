"""Determinism self-lint (NYX02x): AST audit of ``src/repro`` itself.

The whole reproduction leans on two invariants that no test can prove
and one stray import can break:

* **deterministic interleaving** — parallel campaigns replay
  bit-identically for a seed because every stochastic choice flows
  through ``repro.sim.rng.DeterministicRandom`` and every timestamp
  through the simulated clock;
* **replayable fault plans** — ``fp1:<seed>:<rate-ppm>`` ids regenerate
  the exact fault stream, which dies the moment wall-clock time or OS
  entropy leaks into a decision.

This pass walks the AST of every module outside ``sim/`` (the one
place allowed to wrap host randomness) and flags wall-clock access
(NYX020), ``random``/``secrets`` (NYX021), OS entropy (NYX022) and
iteration over unordered sets (NYX023).

Grandfathered or deliberately-exempt uses are suppressed inline with
``# nyx: allow[NYX021]`` on the offending line.
"""

from __future__ import annotations

import ast
import pathlib
from typing import List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, allow_tokens

#: (object, attribute) call patterns that read the wall clock.
WALL_CLOCK_ATTRS = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "process_time"), ("time", "sleep"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}
#: Names importable from ``time`` that are wall-clock reads.
WALL_CLOCK_NAMES = {"time", "time_ns", "monotonic", "monotonic_ns",
                    "perf_counter", "perf_counter_ns", "process_time",
                    "sleep"}
#: (object, attribute) call patterns that draw OS entropy.
ENTROPY_ATTRS = {("os", "urandom"), ("uuid", "uuid1"), ("uuid", "uuid4")}
#: Modules whose import is forbidden outright, with their rule code.
FORBIDDEN_MODULES = {"random": "NYX021", "secrets": "NYX022"}
#: Directories (relative to the scanned root) exempt from the lint.
EXEMPT_DIRS = {"sim", "__pycache__"}

def _suppressed(lines: Sequence[str], lineno: int, code: str) -> bool:
    return code in allow_tokens(lines, lineno)


def _is_unordered(expr: ast.AST) -> bool:
    """Does this expression evaluate to a bare (unordered) set?"""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")):
        return True
    if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_unordered(expr.left) or _is_unordered(expr.right)
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, filename: str, lines: Sequence[str]) -> None:
        self.filename = filename
        self.lines = lines
        self.diags: List[Diagnostic] = []

    def _flag(self, code: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if _suppressed(self.lines, lineno, code):
            return
        self.diags.append(Diagnostic(code, message, file=self.filename,
                                     line=lineno))

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            top = alias.name.split(".")[0]
            if top in FORBIDDEN_MODULES:
                self._flag(FORBIDDEN_MODULES[top], node,
                           "import of %r" % alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        top = (node.module or "").split(".")[0]
        if top in FORBIDDEN_MODULES:
            self._flag(FORBIDDEN_MODULES[top], node,
                       "import from %r" % node.module)
        elif top == "time":
            for alias in node.names:
                if alias.name in WALL_CLOCK_NAMES or alias.name == "*":
                    self._flag("NYX020", node,
                               "from time import %s" % alias.name)
        elif top == "os":
            for alias in node.names:
                if alias.name == "urandom":
                    self._flag("NYX022", node, "from os import urandom")
        elif top == "uuid":
            for alias in node.names:
                if alias.name in ("uuid1", "uuid4"):
                    self._flag("NYX022", node,
                               "from uuid import %s" % alias.name)
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base: Optional[str] = None
            if isinstance(func.value, ast.Name):
                base = func.value.id
            elif isinstance(func.value, ast.Attribute):
                base = func.value.attr
            if base is not None:
                key = (base, func.attr)
                if key in WALL_CLOCK_ATTRS:
                    self._flag("NYX020", node,
                               "call to %s.%s()" % key)
                elif key in ENTROPY_ATTRS:
                    self._flag("NYX022", node,
                               "call to %s.%s()" % key)
        self.generic_visit(node)

    # -- unordered iteration -----------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if _is_unordered(node.iter):
            self._flag("NYX023", node, "for-loop over an unordered set")
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        for gen in node.generators:
            if _is_unordered(gen.iter):
                self._flag("NYX023", node,
                           "comprehension over an unordered set")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension


def analyze_source(filename: str, text: str) -> List[Diagnostic]:
    """Lint one module's source; returns diagnostics."""
    try:
        tree = ast.parse(text, filename=filename)
    except SyntaxError as err:
        return [Diagnostic("NYX024", "unparseable module: %s" % err,
                           file=filename, line=err.lineno or 0)]
    visitor = _Visitor(filename, text.splitlines())
    visitor.visit(tree)
    visitor.diags.sort(key=lambda d: (d.line or 0, d.code))
    return visitor.diags


def analyze_source_tree(root: str) -> List[Diagnostic]:
    """Lint every ``.py`` file under ``root`` except ``sim/``."""
    root_path = pathlib.Path(root)
    diags: List[Diagnostic] = []
    for path in sorted(root_path.rglob("*.py")):
        rel = path.relative_to(root_path)
        if EXEMPT_DIRS.intersection(rel.parts[:-1]):
            continue
        text = path.read_text(encoding="utf-8")
        diags.extend(analyze_source(str(path), text))
    return diags
