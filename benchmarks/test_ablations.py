"""Ablations of the design choices DESIGN.md calls out.

* **Dirty stack vs bitmap walk** for finding pages to reset (the §2.3
  KVM-stack optimization).
* **Re-mirror period** for the incremental snapshot's CoW mirror
  (§4.2's "every 2,000 snapshots").
* **Snapshot reuse count** (§3.4: "reusing the snapshot as little as
  50 times yields significant performance increases").
* **Packet-boundary preservation** in the emulation layer (§3.3) —
  coalescing the stream instead loses coverage on boundary-sensitive
  targets.
"""

from __future__ import annotations

import repro.vm.snapshot as snapshot_mod
from repro.fuzz.campaign import build_campaign
from repro.targets import PROFILES
from repro.vm.machine import Machine
from repro.vm.memory import PAGE_SIZE


def test_ablation_dirty_stack_vs_bitmap(benchmark, save_artifact):
    """The stack pops exactly the dirty pages; the bitmap walk scans
    every page.  Host-measurable, not just cost-model."""
    machine = Machine(memory_bytes=256 * 1024 * 1024)  # 64k pages

    def stack_path():
        for page in range(200):
            machine.memory.write(page * PAGE_SIZE, b"x")
        return len(machine.memory.take_dirty())

    def bitmap_path():
        for page in range(200):
            machine.memory.write(page * PAGE_SIZE, b"x")
        return len(machine.memory.scan_bitmap())

    import time
    t0 = time.perf_counter()
    for _ in range(20):
        assert stack_path() == 200
    stack_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(20):
        assert bitmap_path() == 200
    bitmap_time = time.perf_counter() - t0
    benchmark.pedantic(stack_path, rounds=3, iterations=1)
    save_artifact("ablation_dirty_stack.txt",
                  "dirty-stack: %.4fs   bitmap-walk: %.4fs   (%.0fx)"
                  % (stack_time, bitmap_time, bitmap_time / stack_time))
    assert bitmap_time > stack_time * 5


def test_ablation_remirror_period(benchmark, save_artifact):
    """Without periodic re-mirroring, stale page copies accumulate in
    the mirror and every create pays to revert them."""
    results = {}
    for period in (50, 2000):
        original = snapshot_mod.REMIRROR_PERIOD
        snapshot_mod.REMIRROR_PERIOD = period
        try:
            machine = Machine(memory_bytes=64 * 1024 * 1024)
            machine.capture_root()
            # Alternating working sets leave stale copies behind.
            for i in range(300):
                base = (i % 7) * 64
                for page in range(base, base + 32):
                    machine.memory.write(page * PAGE_SIZE, b"gen%d" % i)
                machine.create_incremental()
                machine.restore_root()
            results[period] = (machine.clock.now,
                               machine.snapshots.stats.remirrors)
        finally:
            snapshot_mod.REMIRROR_PERIOD = original
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["remirror period  sim seconds  remirrors"]
    for period, (sim, remirrors) in sorted(results.items()):
        lines.append("%15d  %11.6f  %9d" % (period, sim, remirrors))
    save_artifact("ablation_remirror.txt", "\n".join(lines))
    # Correctness holds for both; the cost difference is modest at this
    # scale, but both configurations must complete all 300 cycles.
    assert all(sim > 0 for sim, _r in results.values())


def test_ablation_snapshot_reuse_count(benchmark, save_artifact):
    """§3.4: throughput vs how many times a snapshot is reused.

    Measured on a long session (a 40-command FTP transcript) where
    skipping the prefix matters; ProFuzzBench-style short seeds barely
    amortize — which is §5.3's own observation about why incremental
    snapshots shine on Firefox/Mario-sized inputs, not lightftp's.
    """
    from repro.fuzz.input import packets_input
    from repro.targets import PROFILES
    profile = PROFILES["lightftp"]
    session = ([b"USER anonymous\r\n", b"PASS x\r\n", b"TYPE I\r\n",
                b"PASV\r\n"]
               + [b"CWD dir%02d\r\nPWD\r\n" % i for i in range(17)]
               + [b"LIST\r\n", b"QUIT\r\n"])
    long_seed = packets_input(session)
    rates = {}

    def sweep():
        for reuse in (5, 50, 200):
            handles = build_campaign(profile, policy="aggressive", seed=4,
                                     time_budget=1e9, max_execs=800,
                                     iterations_per_snapshot=reuse,
                                     seeds=[long_seed])
            stats = handles.fuzzer.run_campaign()
            rates[reuse] = stats.execs_per_second()
        return rates

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["reuse count  execs/sim-second"]
    for reuse, rate in sorted(rates.items()):
        lines.append("%11d  %16.1f" % (reuse, rate))
    save_artifact("ablation_reuse.txt", "\n".join(lines))
    # Reusing the snapshot more amortizes its creation: 50 reuses must
    # beat 5 ("even ... as little as 50 times yields significant
    # performance increases").
    assert rates[50] > rates[5]


def test_ablation_packet_boundaries(benchmark, save_artifact):
    """Boundary-preserving vs coalesced delivery of the *same* inputs.

    §3.3: packet boundaries are semantic — the clearest case being
    datagram protocols, where concatenating two DNS queries into one
    datagram destroys the second query entirely.  We replay identical
    corpora both ways through the same executor and compare the edge
    union (deterministic, fuzzer-independent)."""
    from repro.fuzz.input import packets_input

    def run():
        profile = PROFILES["dnsmasq"]
        seeds = profile.seeds()
        handles = build_campaign(profile, policy="none", seed=3,
                                 time_budget=1e9, max_execs=1)
        executor = handles.executor
        preserved, coalesced = set(), set()
        for seed in seeds:
            payloads = [seed.payload_of(i) for i in seed.packet_indices()]
            result = executor.run_full(packets_input(payloads))
            preserved |= set(result.trace)
            result = executor.run_full(packets_input([b"".join(payloads)]))
            coalesced |= set(result.trace)
        return len(preserved), len(coalesced)

    preserved_cov, coalesced_cov = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    save_artifact("ablation_boundaries.txt",
                  "boundary-preserving coverage: %d\n"
                  "coalesced-stream coverage:    %d"
                  % (preserved_cov, coalesced_cov))
    assert preserved_cov > coalesced_cov, (
        "merging datagrams must lose the per-message parse paths")
