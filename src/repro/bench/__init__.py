"""Benchmark harness: regenerates every table and figure of the paper.

:mod:`repro.bench.profuzzbench` runs the fuzzer × target campaign
matrix (with memoization so the table benches share one run), and
:mod:`repro.bench.reporting` renders the paper's tables (1, 2, 3, 4, 5)
and figure data (5, 6, 7) from the results.

Scale knobs (environment variables):

* ``REPRO_SIM_BUDGET`` — simulated seconds per campaign (default 600).
* ``REPRO_SEEDS`` — repetitions per configuration (default 2; the
  paper uses 10 and Mann-Whitney U at p<0.05 — with fewer than 4
  seeds the test cannot reach significance and the tables say so).
* ``REPRO_EXEC_CAP_NYX`` / ``REPRO_EXEC_CAP_AFL`` — host-side exec
  caps keeping laptop runtimes bounded.
"""

from repro.bench.profuzzbench import (BenchConfig, MatrixResult, RunResult,
                                      run_fuzzer_once, run_matrix,
                                      FUZZER_NAMES)
from repro.bench.reporting import (mann_whitney_u, median, format_table,
                                   coverage_table, throughput_table,
                                   crash_table, time_to_coverage_table,
                                   coverage_series_csv)

__all__ = ["BenchConfig", "MatrixResult", "RunResult", "run_fuzzer_once",
           "run_matrix", "FUZZER_NAMES", "mann_whitney_u", "median",
           "format_table", "coverage_table", "throughput_table",
           "crash_table", "time_to_coverage_table", "coverage_series_csv"]
