"""Wall-clock timing primitives for the benchmark harness.

This is the one module outside ``sim/`` that may read the host clock:
benchmarks measure *host* throughput, which is exactly the quantity the
simulated clock abstracts away.  Every read is suppressed for the
NYX020 determinism lint, and nothing here may ever feed a fuzzing
decision — timer output flows only into ``BENCH_*.json`` reports.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple


def wall_now() -> float:
    """Current wall-clock reading in seconds (monotonic)."""
    return time.perf_counter()  # nyx: allow[NYX020]


class WallTimer:
    """Accumulating stopwatch over :func:`wall_now`.

    A disabled timer (``WallTimer(enabled=False)``) never reads the
    host clock and accumulates nothing, so measurement scaffolding can
    stay in place on paths where timing is switched off without paying
    two clock reads per window.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "WallTimer":
        if self.enabled:
            self._started_at = wall_now()
        return self

    def __exit__(self, *exc) -> None:
        if self.enabled:
            self.elapsed += wall_now() - self._started_at
            self._started_at = None


def bench_loop(fn: Callable[[int], object], *, min_seconds: float,
               min_iterations: int = 3,
               max_iterations: int = 1 << 22) -> Tuple[int, float]:
    """Call ``fn(iteration)`` until ``min_seconds`` of wall time accrue.

    Returns ``(iterations, elapsed_seconds)``.  The loop always runs at
    least ``min_iterations`` times so even a slow operation yields a
    usable rate, and is capped so a degenerate free operation cannot
    spin forever.
    """
    iterations = 0
    start = wall_now()
    while True:
        fn(iterations)
        iterations += 1
        elapsed = wall_now() - start
        if iterations >= max_iterations:
            return iterations, elapsed
        if iterations >= min_iterations and elapsed >= min_seconds:
            return iterations, elapsed


def rate_entry(name: str, iterations: int, elapsed: float,
               **extra) -> Dict[str, object]:
    """One benchmark row: iterations, wall seconds and derived rate."""
    entry: Dict[str, object] = {
        "name": name,
        "iterations": iterations,
        "wall_seconds": round(elapsed, 6),
        "per_sec": round(iterations / elapsed, 3) if elapsed > 0 else 0.0,
    }
    for key in sorted(extra):
        entry[key] = extra[key]
    return entry
