"""Static analysis for specs, corpora and the reproduction itself.

The paper's spec layer is an affine type system (§4.2); this package
is the *static* half of that discipline, which the seed repo only
enforced dynamically at (de)serialization time:

* :mod:`repro.analysis.diagnostics` — stable ``NYX0xx`` rule codes,
  severities, machine-readable reports;
* :mod:`repro.analysis.speclint` — node-graph lint for a
  :class:`~repro.spec.nodes.Spec` (unproducible/dead edge types,
  unreachable nodes, id collisions, unmutatable data);
* :mod:`repro.analysis.oplint` — abstract interpretation over op
  sequences (dead outputs, unobservable tails, marker placement,
  mutation-introduced affine violations);
* :mod:`repro.analysis.fixes` — mechanical repairs (dead-op
  elimination with ref remapping, marker normalization, ill-typed-op
  dropping) used by trim, persistence and corpus sync;
* :mod:`repro.analysis.selflint` — AST determinism lint over
  ``src/repro`` (wall clock, host randomness, OS entropy, unordered
  set iteration — everything that would break deterministic
  interleaving and replayable fault plans);
* :mod:`repro.analysis.corpus` — audit/repair persisted corpora;
* :mod:`repro.analysis.resetlint` — reset-safety lint over the
  snapshot machinery (``vm/``, ``guestos/``, ``emu/``, ``faults/``):
  mutable state that no reset path restores;
* :mod:`repro.analysis.sanitizer` — runtime reset sanitizer:
  structural digest of the host object graph diffed across snapshot
  restores, naming the exact attribute path that leaked;
* :mod:`repro.analysis.durlint` — durability lint (NYX06x): every
  ``snapshot_state``/``restore_state`` pair audited for uncaptured
  mutable state, capture/restore asymmetry, unbumped ``STATE_FORMAT``,
  non-deterministic serialization and unregistered journal frames;
* :mod:`repro.analysis.statediff` — runtime checkpoint verifier:
  snapshot→restore→re-snapshot digest fixpoint plus a cross-process
  differential that restores a checkpoint in a fresh subprocess,
  re-steps to the parent's exec boundary and diffs the states.

All of it is exposed as the ``repro analyze`` CLI subcommand and runs
as a CI gate.
"""

from repro.analysis.diagnostics import (Diagnostic, FAMILIES, Report,
                                        RULES, Severity, validate_registry)
from repro.analysis.durlint import (analyze_durability_source,
                                    analyze_durability_tree,
                                    durability_fixit_stubs,
                                    state_inventory)
from repro.analysis.fixes import (FixResult, apply_fixes,
                                  eliminate_dead_ops, repair_blob,
                                  repair_ops)
from repro.analysis.oplint import analyze_ops
from repro.analysis.resetlint import (analyze_reset_source,
                                      analyze_reset_tree,
                                      allowed_reset_attrs, fixit_stubs,
                                      tree_fixit_stubs)
from repro.analysis.sanitizer import (ResetSanitizer, diff_digests,
                                      structural_digest)
from repro.analysis.speclint import analyze_spec
from repro.analysis.statediff import (fixpoint_check, state_digest,
                                      verify_checkpoint)

__all__ = [
    "Diagnostic", "FAMILIES", "Report", "RULES", "Severity",
    "validate_registry",
    "FixResult", "apply_fixes", "eliminate_dead_ops", "repair_blob",
    "repair_ops", "analyze_ops", "analyze_spec",
    "analyze_reset_source", "analyze_reset_tree", "allowed_reset_attrs",
    "fixit_stubs", "tree_fixit_stubs",
    "ResetSanitizer", "diff_digests", "structural_digest",
    "analyze_durability_source", "analyze_durability_tree",
    "durability_fixit_stubs", "state_inventory",
    "fixpoint_check", "state_digest", "verify_checkpoint",
]
