"""Tests for share-folder packing (§5.4 step 4)."""

import json

import pytest

from repro.spec.nodes import Spec, default_network_spec
from repro.spec.share import (load_share, pack_share, spec_from_dict,
                              spec_to_dict)
from repro.targets import PROFILES


class TestSpecSerialization:
    def test_roundtrip_default_spec(self):
        spec = default_network_spec()
        rebuilt = spec_from_dict(spec_to_dict(spec))
        assert rebuilt.checksum() == spec.checksum()

    def test_roundtrip_custom_spec(self):
        spec = Spec("custom")
        d_bytes = spec.data_vec("payload", spec.data_u8("u8"))
        d_port = spec.data_u16("port")
        e_con = spec.edge_type("connection")
        e_stream = spec.edge_type("stream")
        spec.node_type("open", outputs=[e_con], data=[d_port])
        spec.node_type("upgrade", consumes=[e_con], outputs=[e_stream])
        spec.node_type("send", borrows=[e_stream], data=[d_bytes])
        rebuilt = spec_from_dict(spec_to_dict(spec))
        assert rebuilt.checksum() == spec.checksum()
        node = rebuilt.node_by_name("upgrade")
        assert node.consumes[0].name == "connection"
        assert node.outputs[0].name == "stream"

    def test_dict_is_json_able(self):
        json.dumps(spec_to_dict(default_network_spec()))


class TestShareFolder:
    @pytest.mark.parametrize("target", ["lightftp", "dnsmasq",
                                        "firefox-ipc", "mysql-client"])
    def test_pack_and_load_roundtrip(self, tmp_path, target):
        profile = PROFILES[target]
        spec = default_network_spec()
        written = pack_share(profile, spec, str(tmp_path))
        assert written >= 3
        manifest, spec2, seeds, dictionary, surface = load_share(
            str(tmp_path))
        assert manifest["target"] == target
        assert spec2.checksum() == spec.checksum()
        assert len(seeds) == len(profile.seeds())
        assert dictionary == [bytes(t) for t in profile.dictionary]
        original = profile.surface()
        assert surface.mode == original.mode
        assert surface.addresses == original.addresses
        assert surface.datagram == original.datagram

    def test_loaded_seeds_are_runnable(self, tmp_path):
        from repro.fuzz.campaign import build_campaign
        profile = PROFILES["lightftp"]
        pack_share(profile, default_network_spec(), str(tmp_path))
        _m, _s, seeds, _d, _surface = load_share(str(tmp_path))
        handles = build_campaign(profile, policy="none", seed=1,
                                 time_budget=1e9, max_execs=20, seeds=seeds)
        stats = handles.fuzzer.run_campaign()
        assert stats.execs == 20
