"""Corpus audit (NYX03x + NYX01x): lint persisted ``.nyx`` entries.

Walks a persisted corpus directory (the ``queue/`` layout written by
:mod:`repro.fuzz.persist`, or any flat directory of ``.nyx`` files),
decodes every entry tolerantly and runs the op-sequence dataflow lint
over it.  With ``fix=True``, repairable entries are rewritten in place
(atomically) through :func:`repro.analysis.fixes.apply_fixes` — the
same repair the fuzzer applies at load/import time, so an audited-and-
fixed corpus and a freshly-resumed one agree byte for byte.
"""

from __future__ import annotations

import os
import pathlib
from typing import Optional

from repro.analysis.diagnostics import Diagnostic, Report
from repro.analysis.fixes import apply_fixes
from repro.analysis.oplint import analyze_ops
from repro.spec.bytecode import parse, serialize
from repro.spec.nodes import Spec, SpecError, default_network_spec


def _atomic_write(path: pathlib.Path, data: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def audit_corpus(directory: str, spec: Optional[Spec] = None,
                 fix: bool = False) -> Report:
    """Audit (and optionally repair) every entry of a corpus dir."""
    spec = spec or default_network_spec()
    root = pathlib.Path(directory)
    queue_dir = root / "queue"
    if not queue_dir.is_dir():
        queue_dir = root
    report = Report()
    scanned = repaired = 0
    for path in sorted(queue_dir.glob("*.nyx")):
        scanned += 1
        name = str(path)
        try:
            blob = path.read_bytes()
        except OSError as err:
            report.add(Diagnostic("NYX030", "unreadable file: %s" % err,
                                  file=name))
            continue
        try:
            ops = parse(spec, blob)
        except SpecError as err:
            code = ("NYX031" if "different spec" in str(err) else "NYX030")
            report.add(Diagnostic(code, str(err), file=name))
            continue
        findings = analyze_ops(spec, ops, file=name)
        if fix and any(d.fixable for d in findings):
            result = apply_fixes(spec, ops)
            if result.changed and result.ops:
                _atomic_write(path, serialize(spec, result.ops))
                repaired += 1
                for d in findings:
                    if d.fixable:
                        d.fixed = True
                report.meta.setdefault("repairs", []).append(
                    {"file": name, "applied": result.describe()})
        report.extend(findings)
    report.meta["entries_scanned"] = scanned
    report.meta["entries_repaired"] = repaired
    return report
