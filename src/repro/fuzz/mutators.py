"""Mutation engine: packet-level and byte-level (havoc) mutations.

Nyx auto-generates "custom mutators" from the spec (§2.2); for the
network specs this amounts to two layers:

* **packet-level**: duplicate / drop / swap / truncate the packet
  sequence, or splice packets from another corpus entry;
* **byte-level havoc** on individual packet payloads: bit flips,
  interesting values, arithmetic, block ops and dictionary tokens
  (protocol keywords), AFL-style.

When fuzzing from an incremental snapshot only ops *after* the
snapshot index may change ("the fuzzer continues fuzzing starting from
the next packet only", §4.3) — every entry point takes ``from_index``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence

from repro.fuzz.input import FuzzInput
from repro.sim.rng import DeterministicRandom
from repro.spec.bytecode import Op

INTERESTING_8 = [0, 1, 16, 32, 64, 100, 127, 128, 255]
INTERESTING_16 = [0, 128, 255, 256, 512, 1000, 1024, 4096, 32767, 65535]
INTERESTING_32 = [0, 1, 32768, 65535, 65536, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF]
#: Replacements for ASCII decimal runs (text protocols: lengths,
#: sizes, ranges, ports).
INTERESTING_DECIMALS = [b"0", b"1", b"-1", b"255", b"65535", b"99999",
                        b"4294967295", b"-99999"]

#: Maximum payload size havoc will grow a packet to.
MAX_PAYLOAD = 4096


_DIGIT_RUN_RE = re.compile(rb"[0-9]+")


def _digit_runs(data: bytearray):
    """(start, end) spans of ASCII decimal runs in ``data``.

    One C-level regex scan instead of a Python byte loop; spans are
    identical and no randomness is involved, so mutation streams are
    unchanged.
    """
    return [match.span() for match in _DIGIT_RUN_RE.finditer(data)]


class MutationEngine:
    """Stateless mutation operators driven by a deterministic RNG."""

    def __init__(self, rng: DeterministicRandom,
                 dictionary: Sequence[bytes] = ()) -> None:
        self.rng = rng
        self.dictionary = list(dictionary)

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def mutate(self, parent: FuzzInput, from_index: int = 0,  # nyx: hot
               splice_donor: Optional[FuzzInput] = None) -> FuzzInput:
        """Produce a mutated child touching only ops >= from_index."""
        child = parent.copy()
        child.origin = "havoc"
        mutable = [i for i in child.packet_indices() if i >= from_index]
        if not mutable:
            return child
        rng = self.rng
        # Occasionally restructure the packet sequence.
        if rng.chance(0.2):
            self._structural(child, mutable, splice_donor, from_index)
            mutable = [i for i in child.packet_indices() if i >= from_index]
            if not mutable:
                self._cleanup_markers(child, from_index)
                return child
        # Havoc one or more payloads.
        for _ in range(1 + rng.randrange(3)):
            idx = rng.pick(mutable)
            payload = bytearray(child.payload_of(idx))
            payload = self._havoc_payload(payload)
            child.with_payload(idx, bytes(payload))
        self._cleanup_markers(child, from_index)
        return child

    @staticmethod
    def _cleanup_markers(child: FuzzInput, from_index: int) -> None:
        """Repair snapshot-marker damage done by structural mutation.

        Dropping/truncating packets can strand a marker as the last op
        or leave two markers adjacent — both rejected by ``validate``
        (the analyzer's NYX012).  Only the mutated suffix is touched:
        ops before ``from_index`` anchor an incremental snapshot and
        must stay put.
        """
        ops = child.ops
        if not any(op.is_snapshot_marker() for op in ops[from_index:]):
            return
        while len(ops) > from_index and ops[-1].is_snapshot_marker():
            del ops[-1]
        index = len(ops) - 1
        while index >= max(from_index, 1):
            if (ops[index].is_snapshot_marker()
                    and ops[index - 1].is_snapshot_marker()):
                del ops[index]
            index -= 1

    # ------------------------------------------------------------------
    # structural (packet-level) mutations
    # ------------------------------------------------------------------

    def _structural(self, child: FuzzInput, mutable: List[int],
                    donor: Optional[FuzzInput], from_index: int) -> None:
        rng = self.rng
        if self.dictionary and rng.chance(0.35):
            # Spec-generative insertion: emit a brand-new packet opcode
            # carrying a dictionary token (a whole protocol message).
            # This is the structural edge Nyx's spec model has over
            # byte-level fuzzers: it can *generate* opcodes, not just
            # mutate recorded ones — weighted up because whole-message
            # generation is the spec's main contribution to search.
            idx = rng.pick(mutable)
            op = child.ops[idx]
            ref = op.refs[0] if op.refs else 0
            token = rng.pick(self.dictionary)
            child.ops.insert(idx + (0 if rng.chance(0.5) else 1),
                             Op(op.node, (ref,), (bytes(token),)))
            child.origin = "gen-packet"
            return
        choice = rng.randrange(6)
        if choice == 5:
            # Merge two adjacent packets into one send(): exercises the
            # target's handling of multiple messages per read, which
            # stream transports produce naturally.
            merge_candidates = [i for i in mutable
                                if i + 1 in child.packet_indices()]
            if merge_candidates:
                idx = rng.pick(merge_candidates)
                merged = child.payload_of(idx) + child.payload_of(idx + 1)
                child.with_payload(idx, merged)
                del child.ops[idx + 1]
                child.origin = "merge-packet"
            return
        if choice == 0 and len(mutable) >= 1:
            # Duplicate a packet right after itself.
            idx = rng.pick(mutable)
            op = child.ops[idx]
            child.ops.insert(idx + 1, Op(op.node, op.refs, op.args))
            child.origin = "dup-packet"
        elif choice == 1 and len(mutable) >= 2:
            # Drop one packet.
            idx = rng.pick(mutable)
            del child.ops[idx]
            child.origin = "drop-packet"
        elif choice == 2 and len(mutable) >= 2:
            # Swap two packets' payloads (keeps refs valid).
            a, b = rng.pick(mutable), rng.pick(mutable)
            pa, pb = child.payload_of(a), child.payload_of(b)
            child.with_payload(a, pb)
            child.with_payload(b, pa)
            child.origin = "swap-packet"
        elif choice == 3 and donor is not None:
            # Splice: replace the tail with packets from another entry.
            donor_packets = [donor.payload_of(i) for i in donor.packet_indices()]
            if donor_packets:
                idx = rng.pick(mutable)
                del child.ops[idx + 1:]
                ref = child.ops[idx].refs[0] if child.ops[idx].refs else 0
                take = 1 + rng.randrange(len(donor_packets))
                for payload in donor_packets[:take]:
                    child.ops.append(Op("packet", (ref,), (payload,)))
                child.origin = "splice"
        else:
            # Truncate the tail.
            idx = rng.pick(mutable)
            if idx + 1 < len(child.ops):
                del child.ops[idx + 1:]
                child.origin = "truncate"

    # ------------------------------------------------------------------
    # byte-level havoc
    # ------------------------------------------------------------------

    def _havoc_payload(self, payload: bytearray) -> bytearray:
        rng = self.rng
        stacking = 1 << rng.randrange(4)  # 1..8 stacked tweaks
        for _ in range(stacking):
            payload = self._one_tweak(payload)
            if len(payload) > MAX_PAYLOAD:
                payload = payload[:MAX_PAYLOAD]
        return payload

    def _one_tweak(self, data: bytearray) -> bytearray:
        rng = self.rng
        ops = 11 if self.dictionary else 10
        choice = rng.randrange(ops)
        if not data and choice not in (7, 10):
            choice = 7  # only insertion makes sense on empty payloads
        if choice == 9:
            # Rewrite an ASCII decimal run with an interesting value
            # (text-protocol lengths, ranges, ports — AFL-smart style).
            runs = _digit_runs(data)
            if runs:
                start, end = rng.pick(runs)
                data[start:end] = rng.pick(INTERESTING_DECIMALS)
            return data
        if choice == 0:    # bit flip
            pos = rng.randrange(len(data))
            data[pos] ^= 1 << rng.randrange(8)
        elif choice == 1:  # random byte
            pos = rng.randrange(len(data))
            data[pos] = rng.randrange(256)
        elif choice == 2:  # interesting 8-bit
            pos = rng.randrange(len(data))
            data[pos] = rng.pick(INTERESTING_8)
        elif choice == 3:  # interesting 16-bit (LE or BE)
            if len(data) >= 2:
                pos = rng.randrange(len(data) - 1)
                value = rng.pick(INTERESTING_16)
                byteorder = "little" if rng.chance(0.5) else "big"
                data[pos:pos + 2] = value.to_bytes(2, byteorder)
        elif choice == 4:  # arithmetic +-
            pos = rng.randrange(len(data))
            data[pos] = (data[pos] + rng.randrange(-35, 36)) & 0xFF
        elif choice == 5:  # block delete
            if len(data) >= 2:
                start = rng.randrange(len(data) - 1)
                length = 1 + rng.randrange(min(16, len(data) - start))
                del data[start:start + length]
        elif choice == 6:  # block duplicate (occasionally the whole payload)
            if rng.chance(0.15):
                data.extend(bytes(data))  # doubling reaches overflow sizes fast
            else:
                start = rng.randrange(len(data))
                length = 1 + rng.randrange(min(64, len(data) - start))
                data[start:start] = data[start:start + length]
        elif choice == 7:  # random insert
            pos = rng.randrange(len(data) + 1)
            blob = rng.some_bytes(1 + rng.randrange(8))
            data[pos:pos] = blob
        elif choice == 8:  # byte run overwrite
            pos = rng.randrange(len(data))
            length = 1 + rng.randrange(min(8, len(data) - pos))
            data[pos:pos + length] = bytes([rng.randrange(256)]) * length
        elif choice == 10:  # dictionary token insert/overwrite
            token = rng.pick(self.dictionary)
            pos = rng.randrange(len(data) + 1)
            if rng.chance(0.5) and len(data) >= len(token):
                pos = rng.randrange(len(data) - len(token) + 1)
                data[pos:pos + len(token)] = token
            else:
                data[pos:pos] = token
        return data

    # ------------------------------------------------------------------
    # deterministic first pass (light version of AFL's det stage)
    # ------------------------------------------------------------------

    def deterministic_children(self, parent: FuzzInput,
                               from_index: int = 0,
                               budget: int = 32) -> List[FuzzInput]:
        """A bounded set of deterministic single-tweak children."""
        children: List[FuzzInput] = []
        mutable = [i for i in parent.packet_indices() if i >= from_index]
        for idx in mutable:
            payload = parent.payload_of(idx)
            positions = range(min(len(payload), budget // max(len(mutable), 1) + 1))
            for pos in positions:
                for value in (0x00, 0xFF):
                    if pos < len(payload) and payload[pos] != value:
                        child = parent.copy()
                        mutated = bytearray(payload)
                        mutated[pos] = value
                        child.with_payload(idx, bytes(mutated))
                        child.origin = "det"
                        children.append(child)
                        if len(children) >= budget:
                            return children
        return children
