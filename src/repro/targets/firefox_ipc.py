"""Firefox IPC: the §5.6 case study.

Models the parent-process side of Firefox's sandbox IPC: several Unix
domain sockets ("channels") carrying tagged, length-framed messages to
actor objects (PContent, PWindow, PCanvas...), a child content process
forked at startup, and fd-passing-like aliasing.  The attack model is
the paper's: the sandboxed child is compromised, so everything
arriving on the channels is attacker-controlled.

Planted bugs follow the paper's findings: "our three bugs where only
null pointer dereferences [...] the additional two bugs found by
Mozilla were exploitable" — three NULL derefs reachable at different
depths of the actor protocol, plus one deeper exploitable
use-after-free in actor teardown.
"""

from __future__ import annotations

import struct

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashKind, Errno, GuestCrash, GuestError
from repro.guestos.process import Program
from repro.guestos.sockets import SockDomain, SockType
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import TargetProfile

CHANNEL_CONTENT = "/run/firefox/content.sock"
CHANNEL_GFX = "/run/firefox/gfx.sock"

MSG_PING = 1
MSG_CREATE_ACTOR = 2
MSG_ACTOR_CALL = 3
MSG_DESTROY_ACTOR = 4
MSG_SHMEM_MAP = 5
MSG_NAVIGATE = 6

ACTOR_WINDOW = 1
ACTOR_CANVAS = 2
ACTOR_STREAM = 3


class FirefoxParent(Program):
    """The privileged parent process serving IPC channels."""

    name = "firefox-parent"
    asan = True

    def __init__(self) -> None:
        self.listen_fds = {}
        self.conns = {}
        self.actors = {}
        self.next_actor = 16
        self.shmem_segments = {}
        self.child_spawned = False
        self.heap_slack = 3

    def on_start(self, api) -> None:
        api.cpu(0.5)  # Firefox startup: "hundreds of megabytes of code"
        for path in (CHANNEL_CONTENT, CHANNEL_GFX):
            fd = api.socket(SockDomain.UNIX, SockType.STREAM)
            api.bind(fd, path)
            api.listen(fd, backlog=4)
            self.listen_fds[fd] = path
        if not self.child_spawned:
            self.child_spawned = True
            api.fork_child(FirefoxContentChild())

    def poll(self, api) -> None:
        for fd in list(self.listen_fds):
            while True:
                try:
                    conn_fd = api.accept(fd)
                except GuestError as err:
                    if err.errno is Errno.EAGAIN:
                        break
                    raise
                self.conns[conn_fd] = {"buffer": b"", "channel":
                                       self.listen_fds[fd]}
        for conn_fd in list(self.conns):
            self._service(api, conn_fd)

    def _service(self, api, conn_fd: int) -> None:
        state = self.conns.get(conn_fd)
        if state is None:
            return
        while True:
            try:
                data = api.recv(conn_fd)
            except GuestError as err:
                if err.errno is Errno.EAGAIN:
                    return
                self.conns.pop(conn_fd, None)
                return
            if data == b"":
                try:
                    api.close(conn_fd)
                except GuestError:
                    pass
                self.conns.pop(conn_fd, None)
                return
            api.cpu(len(data) * 2e-9 + 1e-6)
            state["buffer"] += data
            self._drain(api, conn_fd, state)

    def _drain(self, api, conn_fd: int, state: dict) -> None:
        buffer = state["buffer"]
        while len(buffer) >= 8:
            msg_type, actor_id, length = struct.unpack_from("<HHI", buffer, 0)
            if length > 1 << 16:
                buffer = b""  # channel error: drop everything
                break
            if len(buffer) < 8 + length:
                break
            payload = buffer[8:8 + length]
            buffer = buffer[8 + length:]
            self._message(api, conn_fd, msg_type, actor_id, payload)
        state["buffer"] = buffer

    def _message(self, api, conn_fd: int, msg_type: int, actor_id: int,
                 payload: bytes) -> None:
        if msg_type == MSG_PING:
            self._send(api, conn_fd, MSG_PING, 0, b"pong")
        elif msg_type == MSG_CREATE_ACTOR:
            self._create_actor(api, conn_fd, payload)
        elif msg_type == MSG_ACTOR_CALL:
            self._actor_call(api, conn_fd, actor_id, payload)
        elif msg_type == MSG_DESTROY_ACTOR:
            self._destroy_actor(api, conn_fd, actor_id, payload)
        elif msg_type == MSG_SHMEM_MAP:
            self._shmem(api, conn_fd, actor_id, payload)
        elif msg_type == MSG_NAVIGATE:
            # Bug 1 (shallow NULL deref): navigation with an empty URL
            # dereferences the not-yet-created docshell.
            if not payload:
                raise GuestCrash(CrashKind.NULL_DEREF,
                                 "ffipc-navigate-null-docshell",
                                 "MSG_NAVIGATE with empty URL")
            api.cpu(5e-6)
            self._send(api, conn_fd, MSG_NAVIGATE, 0, b"loaded:" + payload[:32])

    def _create_actor(self, api, conn_fd: int, payload: bytes) -> None:
        if len(payload) < 2:
            return
        (kind,) = struct.unpack_from("<H", payload, 0)
        if kind not in (ACTOR_WINDOW, ACTOR_CANVAS, ACTOR_STREAM):
            self._send(api, conn_fd, MSG_CREATE_ACTOR, 0, b"\xff")
            return
        actor_id = self.next_actor
        self.next_actor += 1
        self.actors[actor_id] = {"kind": kind, "calls": 0, "shmem": None,
                                 "torn_down": False}
        self._send(api, conn_fd, MSG_CREATE_ACTOR, actor_id,
                   struct.pack("<H", kind))

    def _actor_call(self, api, conn_fd: int, actor_id: int,
                    payload: bytes) -> None:
        actor = self.actors.get(actor_id)
        if actor is None:
            # Bug 2 (NULL deref): calls on unknown actor ids look the
            # routing table up and use the result unchecked.
            if actor_id != 0:
                raise GuestCrash(CrashKind.NULL_DEREF,
                                 "ffipc-unknown-actor-null",
                                 "ACTOR_CALL on unrouted id %d" % actor_id)
            return
        if actor["torn_down"]:
            # Bug 4 (deep, exploitable): call into an actor whose
            # teardown already freed its backing object.
            raise GuestCrash(CrashKind.ASAN_USE_AFTER_FREE,
                             "ffipc-actor-uaf", "call after teardown")
        actor["calls"] += 1
        if actor["kind"] == ACTOR_CANVAS:
            if actor["shmem"] is None and payload[:4] == b"draw":
                # Bug 3 (NULL deref): canvas draw before shmem mapping.
                raise GuestCrash(CrashKind.NULL_DEREF,
                                 "ffipc-canvas-null-shmem",
                                 "draw before SHMEM_MAP")
            api.cpu(2e-6)  # rasterize
            self._send(api, conn_fd, MSG_ACTOR_CALL, actor_id, b"drawn")
        elif actor["kind"] == ACTOR_WINDOW:
            self._send(api, conn_fd, MSG_ACTOR_CALL, actor_id,
                       b"window:%d" % actor["calls"])
        else:
            self._send(api, conn_fd, MSG_ACTOR_CALL, actor_id, b"stream-ok")

    def _destroy_actor(self, api, conn_fd: int, actor_id: int,
                       payload: bytes) -> None:
        actor = self.actors.get(actor_id)
        if actor is None:
            return
        if payload == b"async":
            # Asynchronous teardown frees the object but leaves the
            # routing entry until the child acks — the UAF window.
            actor["torn_down"] = True
        else:
            del self.actors[actor_id]
        self._send(api, conn_fd, MSG_DESTROY_ACTOR, actor_id, b"bye")

    def _shmem(self, api, conn_fd: int, actor_id: int, payload: bytes) -> None:
        actor = self.actors.get(actor_id)
        if actor is None or len(payload) < 4:
            return
        (size,) = struct.unpack_from("<I", payload, 0)
        if size == 0 or size > 1 << 24:
            self._send(api, conn_fd, MSG_SHMEM_MAP, actor_id, b"\xff")
            return
        segment_id = len(self.shmem_segments) + 1
        self.shmem_segments[segment_id] = size
        actor["shmem"] = segment_id
        self._send(api, conn_fd, MSG_SHMEM_MAP, actor_id,
                   struct.pack("<I", segment_id))

    def _send(self, api, conn_fd: int, msg_type: int, actor_id: int,
              payload: bytes) -> None:
        try:
            api.send(conn_fd, struct.pack("<HHI", msg_type, actor_id,
                                          len(payload)) + payload)
        except GuestError:
            pass


class FirefoxContentChild(Program):
    """The sandboxed content process (mostly idle in this harness)."""

    name = "firefox-content"

    def __init__(self) -> None:
        self.ticks = 0

    def poll(self, api) -> None:
        pass  # the fuzzer plays the compromised child


def _msg(msg_type: int, actor_id: int, payload: bytes) -> bytes:
    return struct.pack("<HHI", msg_type, actor_id, len(payload)) + payload


DICTIONARY = [struct.pack("<H", MSG_CREATE_ACTOR),
              struct.pack("<H", MSG_ACTOR_CALL),
              struct.pack("<H", MSG_DESTROY_ACTOR),
              struct.pack("<H", MSG_SHMEM_MAP),
              struct.pack("<H", ACTOR_CANVAS), b"draw", b"async",
              b"http://example.com"]


def make_seeds():
    spec = default_network_spec()
    seeds = []
    # A two-channel seed: the content and gfx sockets used at once
    # ("many of which are needed at the same time", §5.6).
    builder = Builder(spec)
    content = builder.connection()
    gfx = builder.connection()
    builder.packet(content, _msg(MSG_PING, 0, b""))
    builder.packet(gfx, _msg(MSG_CREATE_ACTOR, 0,
                             struct.pack("<H", ACTOR_CANVAS)))
    builder.packet(gfx, _msg(MSG_SHMEM_MAP, 16, struct.pack("<I", 4096)))
    builder.packet(content, _msg(MSG_NAVIGATE, 0, b"http://two.example/"))
    builder.packet(gfx, _msg(MSG_ACTOR_CALL, 16, b"draw frame"))
    seeds.append(FuzzInput(builder.build()))
    for packets in (
        [_msg(MSG_PING, 0, b""),
         _msg(MSG_NAVIGATE, 0, b"http://example.com/")],
        [_msg(MSG_CREATE_ACTOR, 0, struct.pack("<H", ACTOR_WINDOW)),
         _msg(MSG_ACTOR_CALL, 16, b"focus"),
         _msg(MSG_ACTOR_CALL, 16, b"resize"),
         _msg(MSG_DESTROY_ACTOR, 16, b"sync")],
        [_msg(MSG_CREATE_ACTOR, 0, struct.pack("<H", ACTOR_CANVAS)),
         _msg(MSG_SHMEM_MAP, 16, struct.pack("<I", 4096)),
         _msg(MSG_ACTOR_CALL, 16, b"draw rect"),
         _msg(MSG_DESTROY_ACTOR, 16, b"sync")],
        [_msg(MSG_CREATE_ACTOR, 0, struct.pack("<H", ACTOR_STREAM)),
         _msg(MSG_ACTOR_CALL, 16, b"read"),
         _msg(MSG_ACTOR_CALL, 16, b"read"),
         _msg(MSG_ACTOR_CALL, 16, b"read"),
         _msg(MSG_DESTROY_ACTOR, 16, b"sync")],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for packet in packets:
            builder.packet(con, packet)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="firefox-ipc",
    protocol="raw",
    make_program=FirefoxParent,
    surface_factory=lambda: AttackSurface.unix_server(CHANNEL_CONTENT,
                                                      CHANNEL_GFX),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.5,
    libpreeny_compatible=False,
    planted_bugs=("null-deref:ffipc-navigate-null-docshell",
                  "null-deref:ffipc-unknown-actor-null",
                  "null-deref:ffipc-canvas-null-shmem",
                  "asan-use-after-free:ffipc-actor-uaf"),
    notes="§5.6 case study: multi-channel IPC; 3 NULL derefs + 1 "
          "exploitable UAF, matching the reported findings.",
)
