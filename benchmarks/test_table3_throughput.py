"""Table 3: test throughput (executions per second).

Paper shape: AFLNet/AFLNwe in the 0.3-38 execs/s band, AFL++ somewhat
higher where it runs at all, Nyx-Net orders of magnitude above (13 to
~2700), with the aggressive snapshot policy fastest on most targets
and the biggest gains coming from the root snapshot itself.
"""

from __future__ import annotations

import statistics

from repro.bench.profuzzbench import run_matrix
from repro.bench.reporting import throughput_table
from repro.targets import PROFUZZBENCH


def _mean_rate(matrix, fuzzer, target):
    runs = [r for r in matrix.of(fuzzer, target) if not r.not_applicable]
    if not runs:
        return None
    return statistics.fmean(r.execs_per_second for r in runs)


def test_table3_throughput(benchmark, bench_config, save_artifact):
    matrix = benchmark.pedantic(
        lambda: run_matrix(config=bench_config), rounds=1, iterations=1)
    save_artifact("table3_throughput.txt", throughput_table(matrix))

    speedups = []
    for target in PROFUZZBENCH:
        aflnet = _mean_rate(matrix, "aflnet", target)
        nyx = _mean_rate(matrix, "nyx-none", target)
        assert aflnet and nyx
        # Nyx-Net beats AFLNet by 1-3 orders of magnitude everywhere.
        assert nyx > aflnet * 5, (target, nyx, aflnet)
        speedups.append(nyx / aflnet)
    # "improve test throughput by up to 300x" — the max speedup must
    # be deep into the hundreds.
    assert max(speedups) > 100

    # Incremental snapshots help on multi-packet targets: aggressive
    # should beat none somewhere (Table 3's uniform ordering).
    wins = sum(
        1 for target in PROFUZZBENCH
        if (_mean_rate(matrix, "nyx-aggressive", target) or 0)
        > (_mean_rate(matrix, "nyx-none", target) or 0))
    assert wins >= 3
