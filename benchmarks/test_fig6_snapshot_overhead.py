"""Figure 6: incremental snapshot create/load vs dirty pages.

"Measuring the throughput of creating/loading incremental snapshots
with n dirty pages on VMs with 512MB and 4GB memory respectively."

Nyx-Net (dirty-page stack, CoW mirror, fast device reset) is compared
against the Agamotto implementation (whole-bitmap walks, snapshot
tree, QEMU-style device serialization) on the same guest memory.  Both
the simulated cost and the real host time are recorded — the *shapes*
match the paper either way: Nyx ≈ O(dirty pages), Agamotto pays an
O(total pages) bitmap walk, so the gap closes only when nearly all
memory is dirty.

VM sizes are scaled to 128 MiB / 1 GiB (vs the paper's 512 MiB / 4 GiB)
to keep host memory in check; the total/dirty ratio spans the same
range.  Override with REPRO_FIG6_MB (comma-separated MiB values).
"""

from __future__ import annotations

import os

import pytest

from repro.baselines.agamotto import AgamottoSnapshotter
from repro.vm.machine import Machine
from repro.vm.memory import PAGE_SIZE


def _vm_sizes():
    raw = os.environ.get("REPRO_FIG6_MB", "128,1024")
    return [int(x) for x in raw.split(",")]


def _dirty_counts():
    raw = os.environ.get("REPRO_FIG6_DIRTY", "100,1000,10000")
    return [int(x) for x in raw.split(",")]


_RESULTS = []


def _dirty_pages(machine: Machine, n: int) -> None:
    blob = b"\xAA" * 64
    for page in range(n):
        machine.memory.write(page * PAGE_SIZE, blob)


def _record(impl, vm_mb, n, op, sim_cost, benchmark):
    _RESULTS.append((impl, vm_mb, n, op, sim_cost,
                     benchmark.stats.stats.mean if benchmark.stats else 0.0))


@pytest.mark.parametrize("vm_mb", _vm_sizes())
@pytest.mark.parametrize("n_dirty", _dirty_counts())
def test_nyx_create(benchmark, vm_mb, n_dirty):
    machine = Machine(memory_bytes=vm_mb * 1024 * 1024)
    if n_dirty > machine.memory.num_pages:
        pytest.skip("VM too small for %d dirty pages" % n_dirty)
    machine.capture_root()

    def op():
        _dirty_pages(machine, n_dirty)
        t0 = machine.clock.now
        machine.create_incremental()
        cost = machine.clock.now - t0
        machine.restore_root()
        return cost

    sim_cost = benchmark.pedantic(op, rounds=5, iterations=1)
    _record("nyx-net", vm_mb, n_dirty, "create", sim_cost, benchmark)


@pytest.mark.parametrize("vm_mb", _vm_sizes())
@pytest.mark.parametrize("n_dirty", _dirty_counts())
def test_nyx_restore(benchmark, vm_mb, n_dirty):
    machine = Machine(memory_bytes=vm_mb * 1024 * 1024)
    if n_dirty > machine.memory.num_pages:
        pytest.skip("VM too small")
    machine.capture_root()
    machine.create_incremental()

    def op():
        _dirty_pages(machine, n_dirty)
        t0 = machine.clock.now
        machine.restore_incremental()
        return machine.clock.now - t0

    sim_cost = benchmark.pedantic(op, rounds=5, iterations=1)
    _record("nyx-net", vm_mb, n_dirty, "restore", sim_cost, benchmark)


@pytest.mark.parametrize("vm_mb", _vm_sizes())
@pytest.mark.parametrize("n_dirty", _dirty_counts())
def test_agamotto_create(benchmark, vm_mb, n_dirty):
    machine = Machine(memory_bytes=vm_mb * 1024 * 1024)
    if n_dirty > machine.memory.num_pages:
        pytest.skip("VM too small")
    snapshotter = AgamottoSnapshotter(machine)

    def op():
        _dirty_pages(machine, n_dirty)
        t0 = machine.clock.now
        snap = snapshotter.create_snapshot()
        cost = machine.clock.now - t0
        snapshotter.restore(0)
        snapshotter._snapshots.pop(snap, None)
        snapshotter.current = 0
        return cost

    sim_cost = benchmark.pedantic(op, rounds=5, iterations=1)
    _record("agamotto", vm_mb, n_dirty, "create", sim_cost, benchmark)


@pytest.mark.parametrize("vm_mb", _vm_sizes())
@pytest.mark.parametrize("n_dirty", _dirty_counts())
def test_agamotto_restore(benchmark, vm_mb, n_dirty):
    machine = Machine(memory_bytes=vm_mb * 1024 * 1024)
    if n_dirty > machine.memory.num_pages:
        pytest.skip("VM too small")
    snapshotter = AgamottoSnapshotter(machine)
    _dirty_pages(machine, n_dirty)
    snap = snapshotter.create_snapshot()

    def op():
        _dirty_pages(machine, n_dirty)
        t0 = machine.clock.now
        snapshotter.restore(snap)
        return machine.clock.now - t0

    sim_cost = benchmark.pedantic(op, rounds=5, iterations=1)
    _record("agamotto", vm_mb, n_dirty, "restore", sim_cost, benchmark)


def test_zz_fig6_report(benchmark, save_artifact):
    """Render the collected Figure 6 data (runs last)."""
    from repro.bench.plots import fig6_chart
    lines = ["impl,vm_mb,n_dirty,op,sim_seconds,host_seconds"]
    for impl, vm_mb, n, op, sim, host in _RESULTS:
        lines.append("%s,%d,%d,%s,%.9f,%.9f" % (impl, vm_mb, n, op, sim, host))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_artifact("fig6_snapshot_overhead.csv", "\n".join(lines))
    charts = [fig6_chart(_RESULTS, op=op, vm_mb=vm_mb)
              for op in ("create", "restore") for vm_mb in _vm_sizes()]
    save_artifact("fig6_ascii_charts.txt", "\n\n".join(charts))
    # Shape assertions: Nyx beats Agamotto in the relevant range.
    by_key = {(i, m, n, o): s for i, m, n, o, s, _h in _RESULTS}
    for vm_mb in _vm_sizes():
        for n in _dirty_counts():
            for op in ("create", "restore"):
                nyx = by_key.get(("nyx-net", vm_mb, n, op))
                aga = by_key.get(("agamotto", vm_mb, n, op))
                if nyx is None or aga is None:
                    continue
                assert nyx < aga, (
                    "nyx should be faster at %d dirty pages (%s, %dMB)"
                    % (n, op, vm_mb))
