"""Campaign statistics: throughput, coverage-over-time, crash times.

Times are *simulated* seconds (the cost model clock), which is what
every reproduced table and figure reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class CampaignStats:
    """Time series and counters for one fuzzing campaign."""

    fuzzer_name: str = "nyx-net"
    target_name: str = ""
    execs: int = 0
    suffix_execs: int = 0
    crashes_found: int = 0
    queue_size: int = 0
    #: (sim time, distinct edges) — sampled when coverage grows.
    coverage_series: List[Tuple[float, int]] = field(default_factory=list)
    #: (sim time, total execs) — sampled periodically.
    exec_series: List[Tuple[float, int]] = field(default_factory=list)
    #: dedup key -> sim time first seen.
    crash_times: Dict[str, float] = field(default_factory=dict)
    end_time: float = 0.0

    def record_coverage(self, now: float, edges: int) -> None:
        if not self.coverage_series or self.coverage_series[-1][1] != edges:
            self.coverage_series.append((now, edges))

    def record_execs(self, now: float) -> None:
        self.exec_series.append((now, self.execs))

    def record_crash(self, key: str, now: float) -> None:
        if key not in self.crash_times:
            self.crash_times[key] = now
            self.crashes_found += 1

    # -- derived metrics ----------------------------------------------------

    @property
    def final_edges(self) -> int:
        return self.coverage_series[-1][1] if self.coverage_series else 0

    def execs_per_second(self) -> float:
        if self.end_time <= 0:
            return 0.0
        return self.execs / self.end_time

    def edges_at(self, time: float) -> int:
        """Coverage at a given sim time (step function)."""
        edges = 0
        for t, e in self.coverage_series:
            if t > time:
                break
            edges = e
        return edges

    def time_to_edges(self, edges: int) -> Optional[float]:
        """First sim time at which coverage reached ``edges``."""
        for t, e in self.coverage_series:
            if e >= edges:
                return t
        return None

    def summary(self) -> str:
        return ("%s on %s: %d execs (%.1f/s), %d edges, %d crashes, "
                "t=%.1fs" % (self.fuzzer_name, self.target_name, self.execs,
                             self.execs_per_second(), self.final_edges,
                             self.crashes_found, self.end_time))
