"""Reset-safety lint (NYX04x): static audit of the snapshot machinery.

Nyx's execution model rests on one invariant (PAPER §3): *every* piece
of guest-visible and emulator-side mutable state is rolled back by the
root/incremental snapshot reset, so consecutive executions are
independent.  Guest state is covered by construction — it lives in
:class:`~repro.vm.memory.GuestMemory` pages or device ``fields()`` and
is restored wholesale.  Host-side Python objects (the kernel wrapper,
the interceptor, the fault injector) are *not*: any attribute they
mutate per-exec must be re-initialised by a reset method on the
executor's reset path, or coverage feedback silently corrupts the way
SnapFuzz/StateAFL describe.

This pass walks the AST of ``vm/``, ``guestos/``, ``emu/`` and
``faults/`` and builds a registry of mutable state, classifying each
record as *covered* or *leaking*:

* **covered** — the attribute is (re)assigned in a reset-family method
  (name starts with ``reset``/``restore``/``reload``, or is the device
  protocol's ``load_fields``), or the class is marked
  ``# nyx: state[memory]`` (instances are serialized into guest memory
  by ``Kernel.flush_to_memory`` and rebuilt by ``reload_from_memory``,
  so the snapshot itself restores them);
* **leaking** — mutated after ``__init__`` with no reset path: NYX040
  (class has no reset method at all), NYX043 (the reset method exists
  but skips the attribute), NYX044 (class hooks snapshot restores via
  ``on_root_restore``/``on_incremental_restore`` yet keeps state).
  Module-global mutable containers (NYX041) and class-level mutable
  containers (NYX042) leak by construction.

Deliberate cross-reset state — cumulative fuzzer-facing counters,
one-way latches, the snapshot bookkeeping itself — is suppressed
inline with ``# nyx: allow[reset]`` (whole family) or
``# nyx: allow[NYX043]`` (one rule), on the attribute's defining line
or on the ``class`` line for a whole class.  Every suppression should
carry a justification comment.

The lint sees only ``self.attr`` accesses inside the owning class;
state mutated exclusively through another object's reference is
invisible here — the runtime sanitizer (:mod:`.sanitizer`, NYX05x) is
the backstop for that.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, allow_tokens, has_marker

#: Packages (relative to the scanned root) that hold snapshot-covered
#: machinery and its host-side drivers.
SCAN_DIRS = ("vm", "guestos", "emu", "faults")
#: Method-name prefixes that put an assignment on the reset path.
RESET_PREFIXES = ("reset", "restore", "reload")
#: Exact method names that are also reset-family (device protocol).
RESET_NAMES = {"load_fields"}
#: Snapshot-restore hook names (NYX044).
RESTORE_HOOKS = {"on_root_restore", "on_incremental_restore"}
#: Container method calls that mutate the receiver in place.
MUTATING_METHODS = {
    "append", "appendleft", "add", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popleft", "popitem", "remove",
    "setdefault", "sort", "update",
}
#: Constructor names whose result is a mutable container.
MUTABLE_CONSTRUCTORS = {"dict", "list", "set", "bytearray", "deque",
                        "defaultdict", "OrderedDict", "Counter"}

#: Family token accepted by ``# nyx: allow[...]`` alongside rule codes.
FAMILY_TOKEN = "reset"

# Annotation parsing lives in diagnostics (shared by every source
# lint); these aliases keep this module's historical import surface —
# durlint and the fix-it machinery import them from here.
_allow_tokens = allow_tokens


def _memory_marked(lines: Sequence[str], lineno: int) -> bool:
    return has_marker(lines, lineno, "state[memory]")


def _is_reset_family(name: str) -> bool:
    return name in RESET_NAMES or name.lstrip("_").startswith(RESET_PREFIXES)


def _is_staticmethod(node) -> bool:
    """A ``@staticmethod``'s first parameter is not ``self``; scanning
    it would misattribute parameter mutations to the class."""
    return any(isinstance(dec, ast.Name) and dec.id == "staticmethod"
               for dec in node.decorator_list)


def _is_dunder(name: str) -> bool:
    """Module-protocol names (``__all__`` & co) are not caches."""
    return name.startswith("__") and name.endswith("__")


def _is_mutable_value(expr: ast.AST) -> bool:
    """Does this expression build a mutable container?"""
    if isinstance(expr, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in MUTABLE_CONSTRUCTORS
    return False


def _self_attr_base(expr: ast.AST, self_name: str) -> Optional[str]:
    """Container attribute of a subscript-only ``self.X[...]...``
    chain, else ``None``.

    ``self.conns[k]`` and ``self.grid[i][j]`` root at ``conns`` /
    ``grid`` — mutating the subscript mutates the container bound to
    ``self``.  ``self.kernel.field`` does **not** root at ``kernel``:
    that mutates the *other* object, which carries its own class audit
    (attribute hops cross an ownership boundary, subscripts don't).
    """
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    direct = _is_direct_self_attr(node, self_name)
    return direct if node is not expr else None


def _is_direct_self_attr(expr: ast.AST, self_name: str) -> Optional[str]:
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == self_name):
        return expr.attr
    return None


@dataclass
class AttrRecord:
    """One instance attribute of one class."""

    name: str
    #: Line of the ``__init__`` / class-body definition (0 = dynamic).
    defined_line: int = 0
    #: The ``__init__`` default, for fix-it stub generation.
    init_value: Optional[ast.AST] = None
    #: ``(line, method)`` of every write/mutation outside init+reset.
    mutations: List[Tuple[int, str]] = field(default_factory=list)
    #: Assigned or mutated inside a reset-family method.
    reset: bool = False

    @property
    def anchor_line(self) -> int:
        if self.defined_line:
            return self.defined_line
        return self.mutations[0][0] if self.mutations else 0


@dataclass
class ClassRecord:
    """Mutable-state registry for one class."""

    name: str
    line: int
    memory_marked: bool = False
    allow_tokens: Set[str] = field(default_factory=set)
    reset_methods: List[str] = field(default_factory=list)
    restore_hooks: List[str] = field(default_factory=list)
    attrs: Dict[str, AttrRecord] = field(default_factory=dict)
    #: ``(line, name)`` of class-level mutable container assignments.
    class_containers: List[Tuple[int, str]] = field(default_factory=list)

    def attr(self, name: str) -> AttrRecord:
        if name not in self.attrs:
            self.attrs[name] = AttrRecord(name)
        return self.attrs[name]

    def leaking_attrs(self) -> List[AttrRecord]:
        return [self.attrs[n] for n in sorted(self.attrs)
                if self.attrs[n].mutations and not self.attrs[n].reset]


class _MethodScan(ast.NodeVisitor):
    """Collect self-attribute writes and in-place mutations."""

    def __init__(self, self_name: str) -> None:
        self.self_name = self_name
        #: ``(line, attr)`` direct rebinding: ``self.x = ...``
        self.writes: List[Tuple[int, str, ast.AST]] = []
        #: ``(line, attr)`` in-place change: ``self.x[k] = / .append()``
        self.mutations: List[Tuple[int, str]] = []

    def _target(self, target: ast.AST, value: ast.AST) -> None:
        direct = _is_direct_self_attr(target, self.self_name)
        if direct is not None:
            self.writes.append((target.lineno, direct, value))
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._target(elt, value)
            return
        base = _self_attr_base(target, self.self_name)
        if base is not None:
            self.mutations.append((target.lineno, base))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._target(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._target(node.target, node.value)
        self.generic_visit(node)

    def _mutated(self, expr: ast.AST) -> Optional[str]:
        direct = _is_direct_self_attr(expr, self.self_name)
        if direct is not None:
            return direct
        return _self_attr_base(expr, self.self_name)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        base = self._mutated(node.target)
        if base is not None:
            self.mutations.append((node.target.lineno, base))
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            base = self._mutated(target)
            if base is not None:
                self.mutations.append((target.lineno, base))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            base = self._mutated(func.value)
            if base is not None:
                self.mutations.append((node.lineno, base))
        self.generic_visit(node)


def _scan_class(node: ast.ClassDef, lines: Sequence[str]) -> ClassRecord:
    record = ClassRecord(node.name, node.lineno,
                         memory_marked=_memory_marked(lines, node.lineno),
                         allow_tokens=_allow_tokens(lines, node.lineno))
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if (isinstance(target, ast.Name)
                        and _is_mutable_value(stmt.value)):
                    record.class_containers.append(
                        (stmt.lineno, target.id))
        elif isinstance(stmt, ast.AnnAssign):
            # Annotated class-body fields are dataclass field specs:
            # per-instance defaults, not shared containers.  They still
            # define the attribute for coverage accounting.
            if isinstance(stmt.target, ast.Name):
                attr = record.attr(stmt.target.id)
                if not attr.defined_line:
                    attr.defined_line = stmt.lineno
                    attr.init_value = stmt.value
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = stmt.args.posonlyargs + stmt.args.args
            if not args or _is_staticmethod(stmt):
                continue  # staticmethod: no instance state access
            scan = _MethodScan(args[0].arg)
            for inner in stmt.body:
                scan.visit(inner)
            if stmt.name in RESTORE_HOOKS:
                record.restore_hooks.append(stmt.name)
            if stmt.name == "__init__":
                for line, name, value in scan.writes:
                    attr = record.attr(name)
                    if not attr.defined_line:
                        attr.defined_line = line
                        attr.init_value = value
            elif _is_reset_family(stmt.name):
                record.reset_methods.append(stmt.name)
                for line, name, value in scan.writes:
                    attr = record.attr(name)
                    attr.reset = True
                    if not attr.defined_line:
                        attr.defined_line = line
                for line, name in scan.mutations:
                    record.attr(name).reset = True
            else:
                for line, name, _value in scan.writes:
                    record.attr(name).mutations.append((line, stmt.name))
                for line, name in scan.mutations:
                    record.attr(name).mutations.append((line, stmt.name))
    for attr in record.attrs.values():
        attr.mutations.sort()
    return record


class _ModuleScan:
    """Everything the lint learned about one module."""

    def __init__(self, filename: str, text: str) -> None:
        self.filename = filename
        self.lines = text.splitlines()
        self.classes: List[ClassRecord] = []
        #: name -> definition line of module-level mutable containers.
        self.globals: Dict[str, int] = {}
        #: ``(line, name)`` mutation events on module-level names.
        self.global_mutations: List[Tuple[int, str]] = []
        self.parse_error: Optional[Diagnostic] = None
        try:
            tree = ast.parse(text, filename=filename)
        except SyntaxError as err:
            self.parse_error = Diagnostic(
                "NYX045", "unparseable module: %s" % err,
                file=filename, line=err.lineno or 0)
            return
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self.classes.append(_scan_class(node, self.lines))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Name)
                            and not _is_dunder(target.id)
                            and _is_mutable_value(node.value)):
                        self.globals[target.id] = node.lineno
            elif isinstance(node, ast.AnnAssign):
                if (isinstance(node.target, ast.Name)
                        and not _is_dunder(node.target.id)
                        and node.value is not None
                        and _is_mutable_value(node.value)):
                    self.globals[node.target.id] = node.lineno
        if self.globals:
            self._find_global_mutations(tree)

    def _find_global_mutations(self, tree: ast.Module) -> None:
        tracked = set(self.globals)

        def visit(node: ast.AST, shadowed: Set[str]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                shadowed = shadowed | _locally_bound(node)
            for line, name in _name_mutations(node, tracked - shadowed):
                self.global_mutations.append((line, name))
            for child in ast.iter_child_nodes(node):
                visit(child, shadowed)

        for stmt in tree.body:
            visit(stmt, set())
        self.global_mutations.sort()


def _locally_bound(node) -> Set[str]:
    """Names a function scope binds (params, assignments, loop
    targets) and therefore hides from the module scope — unless
    declared ``global``."""
    bound: Set[str] = set()
    arg_nodes = (node.args.posonlyargs + node.args.args
                 + node.args.kwonlyargs)
    bound.update(a.arg for a in arg_nodes)
    if node.args.vararg:
        bound.add(node.args.vararg.arg)
    if node.args.kwarg:
        bound.add(node.args.kwarg.arg)
    declared_global: Set[str] = set()

    def binding_names(target: ast.AST):
        # Only genuine *bindings* shadow the module scope.  A
        # ``cache[k] = v`` / ``cache.field = v`` target mutates the
        # module-level container, it does not rebind the name.
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, ast.Starred):
            yield from binding_names(target.value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from binding_names(elt)

    for inner in ast.walk(node):
        if isinstance(inner, ast.Global):
            declared_global.update(inner.names)
        elif isinstance(inner, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (inner.targets if isinstance(inner, ast.Assign)
                       else [inner.target])
            for target in targets:
                bound.update(binding_names(target))
        elif isinstance(inner, ast.For):
            bound.update(binding_names(inner.target))
    return bound - declared_global


def _name_mutations(node: ast.AST, names: Set[str]):
    """Mutation events (``x[k]=``, ``x.append()``, ``x += ...``) on
    bare names in ``names``, for this one node (no recursion)."""
    def base_name(expr: ast.AST) -> Optional[str]:
        while isinstance(expr, (ast.Attribute, ast.Subscript)):
            expr = expr.value
        return expr.id if isinstance(expr, ast.Name) else None

    if not names:
        return
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                name = base_name(target)
                if name in names:
                    yield target.lineno, name
    elif isinstance(node, ast.AugAssign):
        if isinstance(node.target, (ast.Subscript, ast.Attribute)):
            name = base_name(node.target)
            if name in names:
                yield node.target.lineno, name
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            name = base_name(func.value)
            if name in names:
                yield node.lineno, name


def _suppressed(record: ClassRecord, lines: Sequence[str], lineno: int,
                code: str) -> bool:
    tokens = _allow_tokens(lines, lineno) | record.allow_tokens
    return FAMILY_TOKEN in tokens or code in tokens


def _class_diags(record: ClassRecord, filename: str,
                 lines: Sequence[str]) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for line, name in record.class_containers:
        if _suppressed(record, lines, line, "NYX042"):
            continue
        diags.append(Diagnostic(
            "NYX042",
            "%s.%s is a class-level mutable container: shared across "
            "instances and untouched by any snapshot reset"
            % (record.name, name), file=filename, line=line))
    if FAMILY_TOKEN in record.allow_tokens or record.memory_marked:
        return diags
    for attr in record.leaking_attrs():
        mut_line, mut_method = attr.mutations[0]
        where = "%s() line %d" % (mut_method, mut_line)
        if record.reset_methods:
            code = "NYX043"
            message = ("%s.%s is mutated per-exec (%s) but %s() never "
                       "resets it; state leaks across snapshot resets"
                       % (record.name, attr.name, where,
                          "/".join(sorted(set(record.reset_methods)))))
            fixable = True
        elif record.restore_hooks:
            code = "NYX044"
            message = ("%s.%s is mutated (%s) and survives %s; hook "
                       "classes must restore or justify their state"
                       % (record.name, attr.name, where,
                          "/".join(sorted(set(record.restore_hooks)))))
            fixable = False
        else:
            code = "NYX040"
            message = ("%s.%s is mutated (%s) but the class has no "
                       "reset/restore method and no snapshot coverage"
                       % (record.name, attr.name, where))
            fixable = True
        anchor = attr.anchor_line or record.line
        if _suppressed(record, lines, anchor, code):
            continue
        diags.append(Diagnostic(code, message, file=filename, line=anchor,
                                fixable=fixable))
    return diags


def analyze_reset_source(filename: str, text: str) -> List[Diagnostic]:
    """Reset-safety lint of one module's source."""
    scan = _ModuleScan(filename, text)
    if scan.parse_error is not None:
        return [scan.parse_error]
    diags: List[Diagnostic] = []
    mutated_globals = {name for _line, name in scan.global_mutations}
    for name in sorted(scan.globals):
        line = scan.globals[name]
        if name.isupper() and name not in mutated_globals:
            continue  # unmutated ALL_CAPS container: a constant
        if FAMILY_TOKEN in _allow_tokens(scan.lines, line) \
                or "NYX041" in _allow_tokens(scan.lines, line):
            continue
        detail = ("mutated at line %d"
                  % min(l for l, n in scan.global_mutations if n == name)
                  if name in mutated_globals else "a module-global cache")
        diags.append(Diagnostic(
            "NYX041",
            "module-global mutable container %r (%s) survives every "
            "snapshot reset" % (name, detail), file=filename, line=line))
    for record in scan.classes:
        diags.extend(_class_diags(record, filename, scan.lines))
    diags.sort(key=lambda d: (d.line or 0, d.code))
    return diags


def _tree_files(root: str) -> List[pathlib.Path]:
    root_path = pathlib.Path(root)
    dirs = [root_path / d for d in SCAN_DIRS if (root_path / d).is_dir()]
    if not dirs:
        dirs = [root_path]
    files: List[pathlib.Path] = []
    for base in dirs:
        files.extend(p for p in sorted(base.rglob("*.py"))
                     if "__pycache__" not in p.parts)
    return files


def analyze_reset_tree(root: str) -> List[Diagnostic]:
    """Lint ``vm/``, ``guestos/``, ``emu/`` and ``faults/`` under
    ``root`` (or, for fixture trees without those packages, every
    ``.py`` file under ``root``)."""
    diags: List[Diagnostic] = []
    for path in _tree_files(root):
        diags.extend(analyze_reset_source(
            str(path), path.read_text(encoding="utf-8")))
    return diags


# ---------------------------------------------------------------------------
# fix-it stubs
# ---------------------------------------------------------------------------

def _default_expr(attr: AttrRecord) -> str:
    if attr.init_value is None:
        return "...  # TODO: no __init__ default recorded"
    try:
        return ast.unparse(attr.init_value)
    except Exception:  # pragma: no cover - exotic nodes
        return "...  # TODO: unprintable default"


def fixit_stubs(filename: str, text: str) -> Dict[str, str]:
    """Reset-assignment stubs for every leaking class, keyed by class.

    For a class that already has a reset method the stub lists the
    assignments to add to it; otherwise it is a complete
    ``reset_for_test`` method re-applying the ``__init__`` defaults.
    Defaults referencing ``__init__`` arguments need hand-editing.
    """
    scan = _ModuleScan(filename, text)
    if scan.parse_error is not None:
        return {}
    stubs: Dict[str, str] = {}
    for record in scan.classes:
        diags = _class_diags(record, filename, scan.lines)
        leaking = {d.line for d in diags
                   if d.code in ("NYX040", "NYX043", "NYX044")}
        attrs = [a for a in record.leaking_attrs()
                 if (a.anchor_line or record.line) in leaking]
        if not attrs:
            continue
        body = ["        self.%s = %s" % (a.name, _default_expr(a))
                for a in attrs]
        if record.reset_methods:
            header = ["    # add to %s.%s():"
                      % (record.name, record.reset_methods[0])]
        else:
            header = ["    def reset_for_test(self) -> None:",
                      '        """Re-initialise per-exec state '
                      '(generated stub)."""']
        stubs[record.name] = "\n".join(header + body) + "\n"
    return stubs


def tree_fixit_stubs(root: str) -> Dict[str, str]:
    """Fix-it stubs for every leaking class under ``root``, keyed
    ``<path>::<Class>``."""
    stubs: Dict[str, str] = {}
    for path in _tree_files(root):
        for cls, stub in sorted(fixit_stubs(
                str(path), path.read_text(encoding="utf-8")).items()):
            stubs["%s::%s" % (path, cls)] = stub
    return stubs


# ---------------------------------------------------------------------------
# shared registry for the runtime sanitizer
# ---------------------------------------------------------------------------

def allowed_reset_attrs(root: str) -> Set[Tuple[str, str]]:
    """``(class, attr)`` pairs suppressed with ``# nyx: allow[...]``.

    The runtime sanitizer skips exactly these when digesting the
    object graph, so static suppressions and runtime expectations stay
    one registry.  A class-line allow yields ``(Class, "*")``.
    """
    allowed: Set[Tuple[str, str]] = set()
    for path in _tree_files(root):
        scan = _ModuleScan(str(path), path.read_text(encoding="utf-8"))
        if scan.parse_error is not None:
            continue
        for record in scan.classes:
            if record.allow_tokens:
                allowed.add((record.name, "*"))
            for attr in record.attrs.values():
                anchor = attr.anchor_line
                if anchor and _allow_tokens(scan.lines, anchor):
                    allowed.add((record.name, attr.name))
    return allowed
