"""Benchmark reports: JSON persistence, baseline comparison, the gate.

``repro bench`` emits three machine-readable files —
``BENCH_micro.json``, ``BENCH_fuzz.json`` and ``BENCH_chain.json`` —
and, with ``--check <pct>``, compares them against a committed
``BENCH_baseline.json``:

* **wall-clock rates** regress when they fall more than ``pct`` percent
  below the baseline (faster is always fine — the gate is one-sided);
* **sim-clock metrics** (sim execs/s, final edges) *drift* when they
  differ from the baseline in either direction by more than ``pct``
  percent — host-side optimizations must not move the simulation;
* the macro ``stats_checksum`` is reported informationally: a mismatch
  with identical sim rates usually means the baseline was recorded on
  an older campaign implementation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Comparison:
    """Outcome of comparing a fresh run against a baseline."""

    lines: List[str] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)
    #: False when wall-clock gates were skipped (baseline recorded on a
    #: different host); sim gates still apply.
    wall_gated: bool = True

    @property
    def ok(self) -> bool:
        return not self.regressions

    def add(self, line: str) -> None:
        self.lines.append(line)

    def regress(self, line: str) -> None:
        self.lines.append(line)
        self.regressions.append(line)

    def format_text(self) -> str:
        out = list(self.lines)
        if self.regressions:
            out.append("REGRESSION: %d metric(s) failed the gate"
                       % len(self.regressions))
        else:
            out.append("benchmark gate passed")
        return "\n".join(out)


def write_report(path: str, payload: Dict[str, object]) -> None:
    """Persist a benchmark payload as stable, diffable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def make_baseline(micro: Optional[Dict[str, object]],
                  macro: Optional[Dict[str, object]],
                  chain: Optional[Dict[str, object]] = None
                  ) -> Dict[str, object]:
    """Bundle fresh results into the committed-baseline format."""
    payload: Dict[str, object] = {"kind": "baseline"}
    if micro is not None:
        payload["micro"] = micro
    if macro is not None:
        payload["macro"] = macro
    if chain is not None:
        payload["chain"] = chain
    return payload


def _host_mismatch_detail(cur_host, base_host) -> str:
    """Human-readable description of why two host stamps differ."""
    if not isinstance(cur_host, dict) or not isinstance(base_host, dict):
        return "no host recorded on one side"
    parts = ["%s %r vs %r" % (key, cur_host.get(key), base_host.get(key))
             for key in sorted(set(cur_host) | set(base_host))
             if cur_host.get(key) != base_host.get(key)]
    return "; ".join(parts) or "host fields differ"


def _skip_wall_gates(out: Comparison, cur_host, base_host) -> None:
    """Mark wall gates off, announcing the host mismatch exactly once."""
    if out.wall_gated:
        out.wall_gated = False
        out.add("wall gates skipped (host mismatch: %s)"
                % _host_mismatch_detail(cur_host, base_host))


def _pct_below(current: float, base: float) -> float:
    """How many percent ``current`` sits below ``base`` (>=0)."""
    if base <= 0:
        return 0.0
    return max(0.0, (base - current) / base * 100.0)


def _pct_drift(current: float, base: float) -> float:
    if base == 0:
        return 0.0 if current == 0 else 100.0
    return abs(current - base) / abs(base) * 100.0


def compare_micro(current: Dict[str, object], baseline: Dict[str, object],
                  pct: float, out: Comparison) -> None:
    base_rows = baseline.get("benchmarks", {})
    cur_rows = current.get("benchmarks", {})
    # Micro rates are wall-clock: gate them only on the host that
    # recorded the baseline (an absent host field on either side is
    # treated as a different host).
    same_host = (current.get("host") is not None
                 and current.get("host") == baseline.get("host"))
    if not same_host:
        _skip_wall_gates(out, current.get("host"), baseline.get("host"))
    for name in sorted(cur_rows):
        cur = cur_rows[name]
        base = base_rows.get(name)
        if base is None:
            out.add("micro %-28s %12.0f/s  (no baseline)"
                    % (name, cur["per_sec"]))
            continue
        below = _pct_below(float(cur["per_sec"]), float(base["per_sec"]))
        line = ("micro %-28s %12.0f/s  vs %12.0f/s  (%+.1f%%)"
                % (name, cur["per_sec"], base["per_sec"],
                   (float(cur["per_sec"]) / float(base["per_sec"]) - 1.0)
                   * 100.0 if float(base["per_sec"]) else 0.0))
        if below > pct and same_host:
            out.regress(line + "  << regressed beyond %.0f%%" % pct)
        elif below > pct:
            out.add(line + "  (different host: not gated)")
        else:
            out.add(line)


def compare_macro(current: Dict[str, object], baseline: Dict[str, object],
                  pct: float, out: Comparison) -> None:
    cur_wall = float(current.get("wall_execs_per_sec", 0.0))
    base_wall = float(baseline.get("wall_execs_per_sec", 0.0))
    below = _pct_below(cur_wall, base_wall)
    speedup = cur_wall / base_wall if base_wall else 0.0
    line = ("macro wall execs/s: %.1f vs %.1f baseline (%.2fx)"
            % (cur_wall, base_wall, speedup))
    # Wall rates are only comparable on the machine that recorded the
    # baseline (docs/performance.md); on any other host the number is
    # reported but never gated — the sim metrics below are the gate.
    same_host = current.get("host") == baseline.get("host")
    if not same_host:
        _skip_wall_gates(out, current.get("host"), baseline.get("host"))
    if below > pct and same_host:
        out.regress(line + "  << regressed beyond %.0f%%" % pct)
    elif below > pct:
        out.add(line + "  (different host: wall rate not gated)")
    else:
        out.add(line)

    # Sim-clock metrics are a pure function of the campaign
    # configuration; comparing them across different configurations
    # (e.g. a 400-exec quick run vs a 2000-exec baseline) would flag
    # drift that is really a config difference, not a behaviour change.
    config_keys = ("target", "seed", "policy", "execs", "max_chain_depth")
    same_config = all(current.get(k) == baseline.get(k)
                      for k in config_keys)
    if not same_config:
        out.add("macro sim metrics: skipped (campaign config differs "
                "from baseline: %s)"
                % ", ".join("%s=%r vs %r" % (k, current.get(k),
                                             baseline.get(k))
                            for k in config_keys
                            if current.get(k) != baseline.get(k)))
        return

    for key, label in (("sim_execs_per_sec", "sim execs/s"),
                       ("final_edges", "final edges")):
        cur_v = float(current.get(key, 0.0))
        base_v = float(baseline.get(key, 0.0))
        drift = _pct_drift(cur_v, base_v)
        line = "macro %s: %.4g vs %.4g baseline" % (label, cur_v, base_v)
        if drift > pct:
            out.regress(line + "  << sim drift %.1f%% beyond %.0f%%"
                        % (drift, pct))
        else:
            out.add(line)

    cur_sum = current.get("stats_checksum")
    base_sum = baseline.get("stats_checksum")
    if base_sum is not None:
        if cur_sum == base_sum:
            out.add("macro stats checksum: identical (sim-clock behaviour "
                    "byte-identical to baseline)")
        else:
            out.add("macro stats checksum: differs from baseline "
                    "(informational; sim rates above are the gate)")


def compare_chain(current: Dict[str, object], baseline: Dict[str, object],
                  pct: float, out: Comparison) -> None:
    """Gate the deep-state chain scenario (``run_chain_macro``).

    ``chain_speedup`` is a ratio of two wall rates measured back to
    back on the same host, so it is gated like a wall metric (one-sided
    and only on the baseline's host).  The per-leg sim metrics and
    stats checksums are deterministic: when the scenario config matches
    the baseline, a checksum mismatch is a hard regression — chains
    (or the bandit) changed sim-visible behaviour.
    """
    cur_speedup = float(current.get("chain_speedup", 0.0))
    base_speedup = float(baseline.get("chain_speedup", 0.0))
    line = ("chain speedup (bandit depth %s vs single-incremental): "
            "%.2fx vs %.2fx baseline"
            % (current.get("depth"), cur_speedup, base_speedup))
    same_host = (current.get("host") is not None
                 and current.get("host") == baseline.get("host"))
    if not same_host:
        _skip_wall_gates(out, current.get("host"), baseline.get("host"))
    below = _pct_below(cur_speedup, base_speedup)
    if below > pct and same_host:
        out.regress(line + "  << regressed beyond %.0f%%" % pct)
    elif below > pct:
        out.add(line + "  (different host: speedup not gated)")
    else:
        out.add(line)

    config_keys = ("target", "seed", "execs", "depth")
    same_config = all(current.get(k) == baseline.get(k)
                      for k in config_keys)
    if not same_config:
        out.add("chain sim metrics: skipped (scenario config differs "
                "from baseline: %s)"
                % ", ".join("%s=%r vs %r" % (k, current.get(k),
                                             baseline.get(k))
                            for k in config_keys
                            if current.get(k) != baseline.get(k)))
        return

    for leg in ("ref", "chain"):
        cur_leg = current.get(leg) or {}
        base_leg = baseline.get(leg) or {}
        for key, label in (("sim_execs_per_sec", "sim execs/s"),
                           ("final_edges", "final edges")):
            cur_v = float(cur_leg.get(key, 0.0))
            base_v = float(base_leg.get(key, 0.0))
            drift = _pct_drift(cur_v, base_v)
            line = ("chain %s %s: %.4g vs %.4g baseline"
                    % (leg, label, cur_v, base_v))
            if drift > pct:
                out.regress(line + "  << sim drift %.1f%% beyond %.0f%%"
                            % (drift, pct))
            else:
                out.add(line)
        cur_sum = cur_leg.get("stats_checksum")
        base_sum = base_leg.get("stats_checksum")
        if base_sum is None:
            continue
        if cur_sum == base_sum:
            out.add("chain %s stats checksum: identical" % leg)
        else:
            out.regress("chain %s stats checksum: differs from baseline"
                        "  << sim-visible behaviour changed" % leg)


def compare_reports(micro: Optional[Dict[str, object]],
                    macro: Optional[Dict[str, object]],
                    baseline: Dict[str, object],
                    pct: float,
                    chain: Optional[Dict[str, object]] = None
                    ) -> Comparison:
    """Gate fresh micro/macro/chain payloads against a committed
    baseline."""
    out = Comparison()
    if micro is not None and "micro" in baseline:
        compare_micro(micro, baseline["micro"], pct, out)
    if macro is not None and "macro" in baseline:
        compare_macro(macro, baseline["macro"], pct, out)
    if chain is not None and "chain" in baseline:
        compare_chain(chain, baseline["chain"], pct, out)
    if not out.lines:
        out.add("baseline has no comparable sections")
    return out
