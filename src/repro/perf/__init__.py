"""Performance measurement for the execute-reset hot path.

The ROADMAP's north star ("as fast as the hardware allows") needs a
ruler before it needs a faster engine: this package provides
wall-clock-instrumented micro and macro benchmarks plus a baseline
comparison/regression gate, surfaced as ``repro bench``.

Two clocks matter and must never be conflated:

* **sim clock** — the deterministic cost-model time every reproduced
  table and figure reports.  Optimizations must leave it untouched.
* **wall clock** — host CPU time actually burned per execution.  This
  is what the hot-path work in ``vm/memory.py`` / ``vm/snapshot.py``
  optimizes, and what the benchmarks here measure.

See docs/performance.md for how to run and read the reports.
"""

from repro.perf.macro import run_chain_macro, run_macro
from repro.perf.micro import run_micro
from repro.perf.profiler import run_profile
from repro.perf.report import (compare_reports, load_report, write_report)

__all__ = ["run_macro", "run_chain_macro", "run_micro", "run_profile",
           "compare_reports", "load_report", "write_report"]
