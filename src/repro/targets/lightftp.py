"""lightftp: a small, single-process FTP server.

Mirrors the ProFuzzBench lightftp target: a compact command parser
with login state, directory navigation and passive-mode stubs.  Table 1
of the paper lists no crashes for lightftp by any fuzzer, so this
target plants no reachable bug — it is a pure coverage/throughput
workload.
"""

from __future__ import annotations

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, MessageServer, TargetProfile

PORT = 2121


class LightFtpServer(MessageServer):
    name = "lightftp"
    port = PORT

    def on_boot(self, api) -> None:
        api.write_whole_file("/srv/ftp/readme.txt", b"welcome to lightftp\n")
        api.write_whole_file("/srv/ftp/motd", b"hello\n")

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        conn.buffer += data
        while b"\r\n" in conn.buffer or b"\n" in conn.buffer:
            line, conn.buffer = _take_line(conn.buffer)
            self._command(api, conn, line)

    def _command(self, api, conn: ConnCtx, line: bytes) -> None:
        if conn.state == "new":
            self.reply(api, conn, b"220 LightFTP ready\r\n")
            conn.state = "greeted"
        parts = line.strip().split(None, 1)
        if not parts:
            self.reply(api, conn, b"500 Empty command\r\n")
            return
        cmd = parts[0].upper()
        arg = parts[1] if len(parts) > 1 else b""
        handler = getattr(self, "_cmd_" + cmd.decode("ascii", "replace").lower(),
                          None) if cmd.isalpha() else None
        if handler is None:
            self.reply(api, conn, b"502 Command not implemented\r\n")
            return
        handler(api, conn, arg)

    # -- commands ---------------------------------------------------------

    def _cmd_user(self, api, conn, arg) -> None:
        conn.vars["user"] = arg[:64]
        conn.state = "need-pass"
        self.reply(api, conn, b"331 Password required\r\n")

    def _cmd_pass(self, api, conn, arg) -> None:
        if conn.state != "need-pass":
            self.reply(api, conn, b"503 Login with USER first\r\n")
            return
        if conn.vars.get("user") == b"anonymous" or arg == b"secret":
            conn.state = "authed"
            conn.vars["cwd"] = "/srv/ftp"
            self.reply(api, conn, b"230 Logged in\r\n")
        else:
            conn.state = "greeted"
            self.reply(api, conn, b"530 Login incorrect\r\n")

    def _need_auth(self, api, conn) -> bool:
        if conn.state != "authed":
            self.reply(api, conn, b"530 Not logged in\r\n")
            return True
        return False

    def _cmd_syst(self, api, conn, arg) -> None:
        self.reply(api, conn, b"215 UNIX Type: L8\r\n")

    def _cmd_feat(self, api, conn, arg) -> None:
        self.reply(api, conn, b"211-Features:\r\n SIZE\r\n REST STREAM\r\n211 End\r\n")

    def _cmd_noop(self, api, conn, arg) -> None:
        self.reply(api, conn, b"200 OK\r\n")

    def _cmd_type(self, api, conn, arg) -> None:
        if arg.upper() in (b"A", b"I"):
            conn.vars["type"] = arg.upper()
            self.reply(api, conn, b"200 Type set\r\n")
        else:
            self.reply(api, conn, b"504 Bad type\r\n")

    def _cmd_pwd(self, api, conn, arg) -> None:
        if self._need_auth(api, conn):
            return
        cwd = conn.vars.get("cwd", "/")
        self.reply(api, conn, b'257 "%s"\r\n' % cwd.encode())

    def _cmd_cwd(self, api, conn, arg) -> None:
        if self._need_auth(api, conn):
            return
        path = _resolve(conn.vars.get("cwd", "/srv/ftp"), arg)
        conn.vars["cwd"] = path
        self.reply(api, conn, b"250 Directory changed\r\n")

    def _cmd_cdup(self, api, conn, arg) -> None:
        if self._need_auth(api, conn):
            return
        cwd = conn.vars.get("cwd", "/srv/ftp")
        conn.vars["cwd"] = cwd.rsplit("/", 1)[0] or "/"
        self.reply(api, conn, b"250 OK\r\n")

    def _cmd_size(self, api, conn, arg) -> None:
        if self._need_auth(api, conn):
            return
        path = _resolve(conn.vars.get("cwd", "/srv/ftp"), arg)
        if api.file_exists(path):
            size = len(api.read_whole_file(path))
            self.reply(api, conn, b"213 %d\r\n" % size)
        else:
            self.reply(api, conn, b"550 No such file\r\n")

    def _cmd_retr(self, api, conn, arg) -> None:
        if self._need_auth(api, conn):
            return
        path = _resolve(conn.vars.get("cwd", "/srv/ftp"), arg)
        if not api.file_exists(path):
            self.reply(api, conn, b"550 No such file\r\n")
            return
        if "pasv" not in conn.vars:
            self.reply(api, conn, b"425 Use PASV first\r\n")
            return
        self.reply(api, conn, b"150 Opening data connection\r\n")
        api.cpu(1e-5)
        self.reply(api, conn, b"226 Transfer complete\r\n")

    def _cmd_stor(self, api, conn, arg) -> None:
        if self._need_auth(api, conn):
            return
        if "pasv" not in conn.vars:
            self.reply(api, conn, b"425 Use PASV first\r\n")
            return
        path = _resolve(conn.vars.get("cwd", "/srv/ftp"), arg)
        api.write_whole_file(path, b"")
        conn.vars["storing"] = path
        self.reply(api, conn, b"150 Ready for data\r\n")

    def _cmd_dele(self, api, conn, arg) -> None:
        if self._need_auth(api, conn):
            return
        path = _resolve(conn.vars.get("cwd", "/srv/ftp"), arg)
        if api.file_exists(path):
            api.unlink(path)
            self.reply(api, conn, b"250 Deleted\r\n")
        else:
            self.reply(api, conn, b"550 No such file\r\n")

    def _cmd_pasv(self, api, conn, arg) -> None:
        if self._need_auth(api, conn):
            return
        conn.vars["pasv"] = True
        self.reply(api, conn, b"227 Entering Passive Mode (127,0,0,1,8,1)\r\n")

    def _cmd_port(self, api, conn, arg) -> None:
        if self._need_auth(api, conn):
            return
        fields = arg.split(b",")
        if len(fields) != 6 or not all(f.strip().isdigit() for f in fields):
            self.reply(api, conn, b"501 Bad PORT\r\n")
            return
        conn.vars["pasv"] = True  # active mode behaves like pasv here
        self.reply(api, conn, b"200 PORT OK\r\n")

    def _cmd_list(self, api, conn, arg) -> None:
        if self._need_auth(api, conn):
            return
        if "pasv" not in conn.vars:
            self.reply(api, conn, b"425 Use PASV first\r\n")
            return
        self.reply(api, conn, b"150 Listing\r\n226 Done\r\n")

    def _cmd_rest(self, api, conn, arg) -> None:
        if arg.isdigit():
            conn.vars["rest"] = int(arg)
            self.reply(api, conn, b"350 Restarting\r\n")
        else:
            self.reply(api, conn, b"501 Bad offset\r\n")

    def _cmd_quit(self, api, conn, arg) -> None:
        self.reply(api, conn, b"221 Goodbye\r\n")
        conn.state = "quit"


def _take_line(buffer: bytes):
    idx = buffer.find(b"\n")
    return buffer[:idx + 1], buffer[idx + 1:]


def _resolve(cwd: str, arg: bytes) -> str:
    name = arg.decode("latin1").strip()
    if name.startswith("/"):
        return name or "/"
    if not name:
        return cwd
    return cwd.rstrip("/") + "/" + name


# ----------------------------------------------------------------------
# profile
# ----------------------------------------------------------------------

DICTIONARY = [b"USER ", b"PASS ", b"anonymous", b"secret", b"PASV", b"PORT ",
              b"LIST", b"RETR ", b"STOR ", b"DELE ", b"CWD ", b"PWD", b"TYPE I",
              b"SIZE ", b"REST ", b"QUIT", b"\r\n", b"readme.txt"]


def make_seeds():
    spec = default_network_spec()
    seeds = []
    for session in (
        [b"USER anonymous\r\n", b"PASS guest\r\n", b"SYST\r\n", b"PWD\r\n",
         b"QUIT\r\n"],
        [b"USER admin\r\n", b"PASS secret\r\n", b"TYPE I\r\n", b"PASV\r\n",
         b"LIST\r\n", b"RETR readme.txt\r\n", b"QUIT\r\n"],
        [b"USER anonymous\r\n", b"PASS x\r\n", b"CWD upload\r\n", b"PASV\r\n",
         b"STOR data.bin\r\n", b"QUIT\r\n"],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for line in session:
            builder.packet(con, line)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="lightftp",
    protocol="ftp",
    make_program=LightFtpServer,
    surface_factory=lambda: AttackSurface.tcp_server(PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.02,
    libpreeny_compatible=True,
    planted_bugs=(),
    notes="No crash found by any fuzzer in Table 1; coverage workload.",
)
