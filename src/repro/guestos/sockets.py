"""Guest socket objects and the loopback network.

Sockets are pure-state objects (picklable, no kernel references): the
fd tables reference them by socket id and the kernel resolves ids
through its registry.  Stream buffers keep per-``send()`` chunk
boundaries, because the paper's emulation layer deliberately preserves
them ("a frightening amount of servers assume that a single call to
recv() will never return data from more than one packet", §3.3); the
*real* network path may coalesce chunks like TCP does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.guestos.errors import Errno, GuestError

#: Marker peer id for connections whose other end is outside the VM
#: (the fuzzer acting as a remote client/server).
EXTERNAL_PEER = -1


class SockDomain(enum.Enum):
    INET = "AF_INET"
    UNIX = "AF_UNIX"


class SockType(enum.Enum):
    STREAM = "SOCK_STREAM"
    DGRAM = "SOCK_DGRAM"


class SockState(enum.Enum):
    NEW = "new"
    BOUND = "bound"
    LISTENING = "listening"
    CONNECTED = "connected"
    SHUTDOWN = "shutdown"
    CLOSED = "closed"


Address = Union[int, str]  # TCP/UDP port number or unix socket path


@dataclass
class Chunk:  # nyx: state[memory]
    """One send()'s worth of data, optionally with a datagram source."""

    data: bytes
    source: Optional[Address] = None


@dataclass
class Socket:  # nyx: state[memory]
    """Pure-state socket object; identity is the socket id ``sid``."""

    sid: int
    domain: SockDomain
    type: SockType
    state: SockState = SockState.NEW
    bound_addr: Optional[Address] = None
    #: Socket ids of fully established, not-yet-accepted connections.
    accept_queue: List[int] = field(default_factory=list)
    backlog: int = 0
    #: Received data, in chunks with boundaries preserved.
    recv_buf: List[Chunk] = field(default_factory=list)
    #: Peer socket id, EXTERNAL_PEER, or None.
    peer: Optional[int] = None
    #: Default destination for connected datagram sockets.
    dgram_dest: Optional[Address] = None
    #: True once the peer closed or shut down its write side.
    peer_closed: bool = False
    #: Open file descriptions referencing this socket (dup/fork).
    refcount: int = 1
    #: Total bytes ever received/sent (diagnostics, state churn).
    bytes_in: int = 0
    bytes_out: int = 0

    # -- receive-side helpers (called by the kernel) -------------------------

    def deliver(self, data: bytes, source: Optional[Address] = None,
                coalesce: bool = False) -> None:
        """Append incoming data.

        ``coalesce=True`` models the real TCP path merging adjacent
        stream segments; the emulated path always preserves boundaries.
        """
        self.bytes_in += len(data)
        if (coalesce and self.type is SockType.STREAM and self.recv_buf
                and self.recv_buf[-1].source == source):
            last = self.recv_buf[-1]
            last.data += data
        else:
            self.recv_buf.append(Chunk(data, source))

    def readable(self) -> bool:
        """Whether recv() would return without blocking."""
        if self.state is SockState.LISTENING:
            return bool(self.accept_queue)
        return bool(self.recv_buf) or self.peer_closed

    def take_chunk(self, max_bytes: int) -> Tuple[bytes, Optional[Address]]:
        """Pop up to ``max_bytes`` of the next chunk.

        Stream semantics: never returns data across a chunk boundary
        (the emulation-layer guarantee).  Datagram semantics: a short
        read truncates the datagram, as UDP does.
        """
        if not self.recv_buf:
            if self.peer_closed:
                return b"", None  # orderly EOF
            raise GuestError(Errno.EAGAIN, "no data on socket %d" % self.sid)
        chunk = self.recv_buf[0]
        if self.type is SockType.DGRAM or len(chunk.data) <= max_bytes:
            self.recv_buf.pop(0)
            return chunk.data[:max_bytes], chunk.source
        head = chunk.data[:max_bytes]
        chunk.data = chunk.data[max_bytes:]
        return head, chunk.source

    def pending_bytes(self) -> int:
        return sum(len(c.data) for c in self.recv_buf)
