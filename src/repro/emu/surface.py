"""Attack-surface configuration for the emulation layer.

"We usually hook the first connection established via a given port and
address" (§2.2).  An :class:`AttackSurface` names the addresses whose
traffic is attacker-controlled; the interceptor marks sockets bound to
(server mode) or connected towards (client mode) those addresses as
surface sockets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Union

Address = Union[int, str]


class SurfaceMode(enum.Enum):
    #: The target is a server; the fuzzer plays the client(s).
    SERVER = "server"
    #: The target is a client connecting out; the fuzzer plays the
    #: server (the MySQL-client case study, §5.4).
    CLIENT = "client"


@dataclass
class AttackSurface:
    """Which addresses the fuzzer controls, and how."""

    mode: SurfaceMode = SurfaceMode.SERVER
    #: Addresses (ports or unix paths) that are attack surface.  Empty
    #: means "hook the first bind/connect observed" (auto mode).
    addresses: List[Address] = field(default_factory=list)
    #: Whether the surface sockets are datagram sockets.
    datagram: bool = False
    #: Upper bound of simultaneously hooked connections (Firefox IPC
    #: needed "many at the same time", §5.6).
    max_connections: int = 16

    def matches(self, addr: Address, seen_any: bool) -> bool:
        """Whether ``addr`` belongs to the surface."""
        if self.addresses:
            return addr in self.addresses
        return not seen_any  # auto mode: first address observed wins

    @classmethod
    def tcp_server(cls, *ports: int) -> "AttackSurface":
        return cls(SurfaceMode.SERVER, list(ports))

    @classmethod
    def udp_server(cls, *ports: int) -> "AttackSurface":
        return cls(SurfaceMode.SERVER, list(ports), datagram=True)

    @classmethod
    def unix_server(cls, *paths: str) -> "AttackSurface":
        return cls(SurfaceMode.SERVER, list(paths))

    @classmethod
    def tcp_client(cls, *ports: int) -> "AttackSurface":
        return cls(SurfaceMode.CLIENT, list(ports))
