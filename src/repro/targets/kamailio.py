"""kamailio: a SIP proxy/registrar.

SIP is by far the branchiest protocol in the suite (the paper reports
+46% coverage for Nyx-Net on kamailio, its second-largest win): a
full request line + header parser with compact header forms, Via
branch handling, registration state and dialog tracking.  No crash is
planted (kamailio shows none in Table 1) — the target exists to give
high-throughput fuzzers a deep parser to chew on.
"""

from __future__ import annotations

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.guestos.sockets import SockType
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, MessageServer, TargetProfile

PORT = 5060

#: Compact header form -> canonical name (RFC 3261 §7.3.3).
COMPACT = {b"V": b"VIA", b"F": b"FROM", b"T": b"TO", b"I": b"CALL-ID",
           b"M": b"CONTACT", b"L": b"CONTENT-LENGTH", b"C": b"CONTENT-TYPE",
           b"K": b"SUPPORTED", b"S": b"SUBJECT", b"E": b"CONTENT-ENCODING"}

METHODS = (b"REGISTER", b"INVITE", b"ACK", b"BYE", b"CANCEL", b"OPTIONS",
           b"SUBSCRIBE", b"NOTIFY", b"MESSAGE", b"INFO", b"UPDATE", b"PRACK")


class KamailioServer(MessageServer):
    name = "kamailio"
    port = PORT
    sock_type = SockType.DGRAM
    startup_cost = 0.12  # kamailio's routing-script compilation
    parse_cost = 5e-9

    def __init__(self) -> None:
        super().__init__()
        #: Registered bindings: AoR -> contact.
        self.registrations = {}
        #: Active dialogs: Call-ID -> state.
        self.dialogs = {}

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        head, _, body = data.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        if not lines or not lines[0]:
            return
        request_line = lines[0]
        headers = self._parse_headers(lines[1:])
        if request_line.startswith(b"SIP/2.0"):
            self._response(api, conn, request_line, headers)
            return
        parts = request_line.split()
        if len(parts) != 3 or parts[2] != b"SIP/2.0":
            self.reply(api, conn, self._status(400, b"Bad Request", headers))
            return
        method, uri = parts[0], parts[1]
        if method not in METHODS:
            self.reply(api, conn, self._status(501, b"Not Implemented", headers))
            return
        if not uri.startswith((b"sip:", b"sips:", b"tel:")):
            self.reply(api, conn, self._status(416, b"Unsupported URI Scheme",
                                               headers))
            return
        if b"VIA" not in headers or b"CALL-ID" not in headers:
            self.reply(api, conn, self._status(400, b"Missing Via/Call-ID",
                                               headers))
            return
        declared = headers.get(b"CONTENT-LENGTH")
        if declared is not None:
            if not declared.strip().isdigit():
                self.reply(api, conn,
                           self._status(400, b"Bad Content-Length", headers))
                return
            if int(declared.strip()) != len(body):
                self.reply(api, conn,
                           self._status(400, b"Body length mismatch", headers))
                return
        dispatch = {
            b"REGISTER": self._register,
            b"INVITE": self._invite,
            b"ACK": self._ack,
            b"BYE": self._bye,
            b"CANCEL": self._cancel,
            b"OPTIONS": self._options,
            b"MESSAGE": self._message,
            b"SUBSCRIBE": self._subscribe,
            b"NOTIFY": self._notify,
            b"INFO": self._info,
            b"UPDATE": self._info,
            b"PRACK": self._info,
        }[method]
        dispatch(api, conn, uri, headers, body)

    # -- header parsing -------------------------------------------------------

    def _parse_headers(self, lines) -> dict:
        headers = {}
        last_key = None
        for line in lines:
            if line[:1] in (b" ", b"\t") and last_key:
                headers[last_key] += b" " + line.strip()  # folded header
                continue
            key, sep, value = line.partition(b":")
            if not sep:
                continue
            key = key.strip().upper()
            key = COMPACT.get(key, key)
            headers[key] = value.strip()
            last_key = key
        return headers

    def _status(self, code: int, phrase: bytes, headers: dict) -> bytes:
        via = headers.get(b"VIA", b"SIP/2.0/UDP 0.0.0.0")
        call_id = headers.get(b"CALL-ID", b"none")
        cseq = headers.get(b"CSEQ", b"1 UNKNOWN")
        return (b"SIP/2.0 %d %s\r\nVia: %s\r\nCall-ID: %s\r\nCSeq: %s\r\n"
                b"Content-Length: 0\r\n\r\n"
                % (code, phrase, via[:256], call_id[:128], cseq[:64]))

    # -- methods ----------------------------------------------------------------

    def _register(self, api, conn, uri, headers, body) -> None:
        to = headers.get(b"TO", b"")
        contact = headers.get(b"CONTACT", b"")
        expires = headers.get(b"EXPIRES", b"3600")
        aor = _uri_of(to)
        if not aor:
            self.reply(api, conn, self._status(400, b"Bad To", headers))
            return
        if expires.strip() == b"0" or contact == b"*":
            self.registrations.pop(aor, None)
        else:
            self.registrations[aor] = _uri_of(contact) or b"sip:anon"
        api.cpu(2e-6)  # location database write
        self.reply(api, conn, self._status(200, b"OK", headers))

    def _invite(self, api, conn, uri, headers, body) -> None:
        call_id = headers[b"CALL-ID"]
        target = _uri_of(headers.get(b"TO", b""))
        if target not in self.registrations:
            self.reply(api, conn, self._status(404, b"Not Found", headers))
            return
        if b"SDP" not in headers.get(b"CONTENT-TYPE", b"").upper() and body:
            self.reply(api, conn,
                       self._status(415, b"Unsupported Media Type", headers))
            return
        self.dialogs[call_id[:64]] = "early"
        api.cpu(4e-6)  # routing script
        self.reply(api, conn, self._status(180, b"Ringing", headers))
        self.reply(api, conn, self._status(200, b"OK", headers))

    def _ack(self, api, conn, uri, headers, body) -> None:
        call_id = headers[b"CALL-ID"][:64]
        if self.dialogs.get(call_id) == "early":
            self.dialogs[call_id] = "confirmed"

    def _bye(self, api, conn, uri, headers, body) -> None:
        call_id = headers[b"CALL-ID"][:64]
        if call_id in self.dialogs:
            del self.dialogs[call_id]
            self.reply(api, conn, self._status(200, b"OK", headers))
        else:
            self.reply(api, conn,
                       self._status(481, b"Call Leg Does Not Exist", headers))

    def _cancel(self, api, conn, uri, headers, body) -> None:
        call_id = headers[b"CALL-ID"][:64]
        if self.dialogs.get(call_id) == "early":
            del self.dialogs[call_id]
            self.reply(api, conn, self._status(200, b"OK", headers))
        else:
            self.reply(api, conn,
                       self._status(481, b"Transaction Does Not Exist", headers))

    def _options(self, api, conn, uri, headers, body) -> None:
        self.reply(api, conn, self._status(200, b"OK", headers))

    def _message(self, api, conn, uri, headers, body) -> None:
        if len(body) > 1300:
            self.reply(api, conn,
                       self._status(513, b"Message Too Large", headers))
            return
        self.reply(api, conn, self._status(202, b"Accepted", headers))

    def _subscribe(self, api, conn, uri, headers, body) -> None:
        if b"EVENT" not in headers:
            self.reply(api, conn, self._status(489, b"Bad Event", headers))
            return
        self.reply(api, conn, self._status(200, b"OK", headers))

    def _notify(self, api, conn, uri, headers, body) -> None:
        self.reply(api, conn, self._status(200, b"OK", headers))

    def _info(self, api, conn, uri, headers, body) -> None:
        self.reply(api, conn, self._status(200, b"OK", headers))

    def _response(self, api, conn, status_line, headers) -> None:
        pass  # proxies absorb stray responses


def _uri_of(field: bytes) -> bytes:
    """Extract the URI out of a To/From/Contact field."""
    if b"<" in field:
        start = field.find(b"<") + 1
        end = field.find(b">", start)
        if end < 0:
            return b""
        return field[start:end]
    return field.split(b";")[0].strip()


DICTIONARY = [b"REGISTER ", b"INVITE ", b"BYE ", b"ACK ", b"OPTIONS ",
              b"sip:alice@test.org", b"Via: SIP/2.0/UDP ", b"Call-ID: ",
              b"CSeq: 1 ", b"Contact: ", b"To: <", b"From: <",
              b"Content-Length: 0", b"Expires: 3600", b"Event: presence",
              b"SIP/2.0", b"\r\n\r\n"]


def _sip(method: bytes, uri: bytes, call_id: bytes, cseq: int,
         *extra: bytes, body: bytes = b"") -> bytes:
    lines = [
        b"%s %s SIP/2.0" % (method, uri),
        b"Via: SIP/2.0/UDP 10.0.0.2:5060;branch=z9hG4bK776",
        b"From: <sip:bob@test.org>;tag=123",
        b"To: <%s>" % uri,
        b"Call-ID: %s" % call_id,
        b"CSeq: %d %s" % (cseq, method),
        b"Content-Length: %d" % len(body),
    ]
    lines.extend(extra)
    return b"\r\n".join(lines) + b"\r\n\r\n" + body


def make_seeds():
    spec = default_network_spec()
    alice = b"sip:alice@test.org"
    seeds = []
    for packets in (
        [_sip(b"REGISTER", alice, b"reg-1", 1,
              b"Contact: <sip:alice@10.0.0.2>", b"Expires: 3600")],
        [_sip(b"REGISTER", alice, b"reg-2", 1,
              b"Contact: <sip:alice@10.0.0.2>"),
         _sip(b"INVITE", alice, b"call-7", 1,
              b"Content-Type: application/sdp", body=b"v=0\r\ns=call\r\n"),
         _sip(b"ACK", alice, b"call-7", 1),
         _sip(b"BYE", alice, b"call-7", 2)],
        [_sip(b"OPTIONS", alice, b"opt-1", 1),
         _sip(b"SUBSCRIBE", alice, b"sub-1", 1, b"Event: presence"),
         _sip(b"MESSAGE", alice, b"msg-1", 1, body=b"hi")],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for packet in packets:
            builder.packet(con, packet)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="kamailio",
    protocol="sip",
    make_program=KamailioServer,
    surface_factory=lambda: AttackSurface.udp_server(PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.12,
    libpreeny_compatible=False,
    planted_bugs=(),
    notes="Branchiest parser in the suite; the +46% coverage row of Table 2.",
)
