"""Input trimming and corpus distillation.

Two classic corpus-hygiene tools adapted to packet-structured inputs:

* :func:`trim_input` — afl-tmin style: drop packets (and shrink
  payloads) while the input's coverage signature is preserved.
  Shorter inputs replay faster and give snapshot placement fewer,
  more meaningful positions.
* :func:`distill_corpus` — afl-cmin style: greedy set cover selecting
  a minimal subset of inputs that together retain every edge the
  corpus reaches.  Useful before persisting a corpus as seeds.

Both drive real executions through a :class:`NyxExecutor`, so they
charge simulated time like any other fuzzing work.  Before spending
any executions, :func:`trim_input` runs the static analyzer's dead-op
elimination and marker normalization as a pre-pass (one verification
execution for the whole reduction, instead of one per op) and reports
statically- vs execution-eliminated ops separately in
:class:`~repro.fuzz.stats.CampaignStats`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.coverage.bitmap import BUCKET_LOOKUP
from repro.fuzz.executor import NyxExecutor
from repro.fuzz.input import FuzzInput
from repro.fuzz.stats import CampaignStats
from repro.spec.bytecode import Op, normalize_markers, validate
from repro.spec.nodes import Spec, SpecError, default_network_spec


def _signature(trace: Dict[int, int], counts: bool = False) -> int:
    """Order-independent hash of a trace.

    By default the *edge set* is hashed: the Python line tracer's hit
    counts shift with every replayed packet, so count-sensitive
    trimming (afl-tmin's exact rule) would refuse nearly all removals.
    Pass ``counts=True`` for the strict classified-count signature.
    """
    if not counts:
        return hash(frozenset(trace))
    lookup = BUCKET_LOOKUP
    total = 0
    for idx, count in trace.items():
        total ^= hash((idx, lookup[count if count < 256 else 255]))
    return total


def static_reduce(spec: Spec, input_: FuzzInput) -> Tuple[FuzzInput, int]:
    """Dead-op elimination + marker normalization, no executions.

    Returns ``(reduced copy, ops removed)``.  Inputs that do not
    validate against ``spec`` (foreign vocabulary, mid-mutation damage)
    are returned unchanged — the static pass only ever operates on
    sequences whose types it fully understands.
    """
    try:
        validate(spec, input_.ops)
    except SpecError:
        return input_, 0
    from repro.analysis.fixes import eliminate_dead_ops
    reduced, removed = eliminate_dead_ops(spec, input_.ops)
    normalized = normalize_markers(reduced)
    removed += len(reduced) - len(normalized)
    if not removed:
        return input_, 0
    candidate = FuzzInput([Op(o.node, o.refs, o.args) for o in normalized],
                          origin=input_.origin, parent_id=input_.parent_id)
    return candidate, removed


def trim_input(executor: NyxExecutor, input_: FuzzInput,
               shrink_payloads: bool = True,
               max_execs: int = 64,
               spec: Optional[Spec] = None,
               stats: Optional[CampaignStats] = None) -> Tuple[FuzzInput, int]:
    """Shrink an input while preserving its coverage signature.

    Returns (trimmed input, executions spent).  The result is always
    signature-equivalent to the original.
    """
    baseline = executor.run_full(input_)
    target_sig = _signature(baseline.trace)
    execs = 1
    current = input_.copy()

    # Pass 0: static dead-op elimination and marker normalization.
    # One execution verifies the whole reduction; if even a "dead"
    # op turns out to matter to the signature (opening a connection
    # can touch target accept paths), the reduction is discarded.
    candidate, removed = static_reduce(spec or default_network_spec(),
                                       current)
    if removed and execs < max_execs:
        result = executor.run_full(candidate)
        execs += 1
        if _signature(result.trace) == target_sig:
            current = candidate
            if stats is not None:
                stats.trim_ops_static += removed
    ops_before_exec_passes = len(current.ops)

    # Pass 1: drop packets back to front (later packets depend on
    # earlier state, not vice versa).
    changed = True
    while changed and execs < max_execs:
        changed = False
        for index in reversed(current.packet_indices()):
            if len(current.packet_indices()) <= 1 or execs >= max_execs:
                break
            candidate = current.copy()
            del candidate.ops[index]
            result = executor.run_full(candidate)
            execs += 1
            if _signature(result.trace) == target_sig:
                current = candidate
                changed = True

    # Pass 2: halve payloads while the signature holds.
    if shrink_payloads:
        for index in current.packet_indices():
            payload = current.payload_of(index)
            while len(payload) > 1 and execs < max_execs:
                candidate = current.copy()
                candidate.with_payload(index, payload[:len(payload) // 2])
                result = executor.run_full(candidate)
                execs += 1
                if _signature(result.trace) != target_sig:
                    break
                current = candidate
                payload = current.payload_of(index)

    if stats is not None:
        stats.trim_ops_exec += ops_before_exec_passes - len(current.ops)
    current.origin = "trimmed"
    return current, execs


def distill_corpus(executor: NyxExecutor,
                   inputs: Sequence[FuzzInput]) -> List[FuzzInput]:
    """Greedy set cover: the smallest subset retaining all edges.

    Inputs are ranked by (edges contributed, then smaller first), the
    classic afl-cmin strategy.
    """
    traced: List[Tuple[FuzzInput, frozenset]] = []
    for input_ in inputs:
        result = executor.run_full(input_)
        traced.append((input_, frozenset(result.trace)))

    universe = set()
    for _input, edges in traced:
        universe |= edges
    chosen: List[FuzzInput] = []
    covered: set = set()
    remaining = list(traced)
    while covered != universe and remaining:
        remaining.sort(key=lambda pair: (-len(pair[1] - covered),
                                         pair[0].total_payload_bytes()))
        best_input, best_edges = remaining.pop(0)
        gain = best_edges - covered
        if not gain:
            break
        chosen.append(best_input)
        covered |= best_edges
    return chosen
