"""Tests for input trimming and corpus distillation."""

import pytest

from repro.emu.interceptor import Interceptor
from repro.emu.surface import AttackSurface
from repro.fuzz.executor import NyxExecutor
from repro.fuzz.input import packets_input
from repro.fuzz.trim import distill_corpus, trim_input
from repro.guestos.kernel import Kernel
from repro.coverage.tracer import EdgeTracer
from repro.targets.lightftp import LightFtpServer, PORT
from repro.vm.machine import Machine


@pytest.fixture()
def executor():
    machine = Machine(memory_bytes=32 * 1024 * 1024)
    kernel = Kernel(machine)
    interceptor = Interceptor(kernel, AttackSurface.tcp_server(PORT))
    kernel.spawn(LightFtpServer())
    kernel.run(max_rounds=256)
    kernel.flush_to_memory(full=True)
    machine.capture_root()
    return NyxExecutor(machine, kernel, interceptor, EdgeTracer())


class TestTrim:
    def test_redundant_packets_removed(self, executor):
        # Five identical NOOPs exercise nothing new after the first.
        bloated = packets_input([b"USER anonymous\r\n", b"PASS x\r\n"]
                                + [b"NOOP\r\n"] * 5)
        trimmed, execs = trim_input(executor, bloated,
                                    shrink_payloads=False)
        assert trimmed.num_packets < bloated.num_packets
        assert execs > 1

    def test_essential_packets_kept(self, executor):
        # Removing USER or PASS changes coverage (auth paths), so the
        # trimmed input must still log in.
        session = packets_input([b"USER anonymous\r\n", b"PASS x\r\n",
                                 b"PWD\r\n"])
        trimmed, _execs = trim_input(executor, session,
                                     shrink_payloads=False)
        payloads = [trimmed.payload_of(i) for i in trimmed.packet_indices()]
        assert any(p.startswith(b"USER") for p in payloads)
        assert any(p.startswith(b"PASS") for p in payloads)

    def test_trim_is_signature_preserving(self, executor):
        from repro.fuzz.trim import _signature
        original = packets_input([b"USER anonymous\r\n", b"PASS x\r\n",
                                  b"NOOP\r\n", b"NOOP\r\n"])
        trimmed, _ = trim_input(executor, original)
        sig_before = _signature(executor.run_full(original).trace)
        sig_after = _signature(executor.run_full(trimmed).trace)
        assert sig_before == sig_after

    def test_exec_budget_respected(self, executor):
        bloated = packets_input([b"NOOP\r\n"] * 10)
        _trimmed, execs = trim_input(executor, bloated, max_execs=5)
        assert execs <= 6  # baseline + budget


class TestDistill:
    def test_subset_covers_everything(self, executor):
        from repro.fuzz.trim import _signature  # noqa: F401 (import check)
        corpus = [
            packets_input([b"USER anonymous\r\n", b"PASS x\r\n", b"PWD\r\n"]),
            packets_input([b"USER anonymous\r\n", b"PASS x\r\n", b"PWD\r\n"]),
            packets_input([b"SYST\r\n"]),
            packets_input([b"USER anonymous\r\n", b"PASS x\r\n",
                           b"PASV\r\n", b"LIST\r\n"]),
        ]
        chosen = distill_corpus(executor, corpus)
        # The duplicate session must not survive distillation.
        assert len(chosen) < len(corpus)
        # Distilled set still reaches every edge of the original set.
        union_before = set()
        for input_ in corpus:
            union_before |= set(executor.run_full(input_).trace)
        union_after = set()
        for input_ in chosen:
            union_after |= set(executor.run_full(input_).trace)
        assert union_before <= union_after

    def test_empty_corpus(self, executor):
        assert distill_corpus(executor, []) == []


class TestMultiChannel:
    def test_two_connections_round_robin_channels(self):
        from repro.targets.firefox_ipc import PROFILE
        from tests.target_harness import TargetHarness
        harness = TargetHarness(PROFILE)
        harness.interceptor.reset_for_test()
        harness.interceptor.open_connection(0)
        harness.interceptor.open_connection(1)
        harness.kernel.run()
        sids = {harness.interceptor._conns[i].sid for i in (0, 1)}
        assert len(sids) == 2

    def test_firefox_two_channel_seed_executes(self):
        from repro.fuzz.campaign import build_campaign
        from repro.targets import PROFILES
        handles = build_campaign(PROFILES["firefox-ipc"], policy="none",
                                 seed=4, time_budget=1e9, max_execs=20)
        stats = handles.fuzzer.run_campaign()
        assert stats.execs == 20
