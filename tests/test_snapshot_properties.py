"""Property-based tests: the snapshot machinery against a model.

A hypothesis state machine performs random interleavings of guest
writes, root restores, incremental creates/restores and re-mirror
cycles, comparing the VM's visible memory against a plain-dict model
after every operation.  This is the strongest correctness evidence for
the paper's trickiest machinery (the CoW mirror + stale-copy revert +
re-mirror interactions of §4.2).
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.vm.machine import Machine
from repro.vm.memory import PAGE_SIZE

N_PAGES = 32


def _machine():
    return Machine(memory_bytes=N_PAGES * PAGE_SIZE, disk_sectors=16)


class SnapshotModel(RuleBasedStateMachine):
    """Model: three dicts of page -> first byte."""

    def __init__(self):
        super().__init__()
        self.machine = _machine()
        self.live = {}          # page -> byte value
        self.machine.capture_root()
        self.root = {}
        self.incremental = None

    @rule(page=st.integers(0, N_PAGES - 1), value=st.integers(1, 255))
    def write(self, page, value):
        self.machine.memory.write(page * PAGE_SIZE, bytes([value]))
        self.live[page] = value

    @rule()
    def restore_root(self):
        self.machine.restore_root()
        self.live = dict(self.root)
        self.incremental = None

    @rule()
    def create_incremental(self):
        self.machine.create_incremental()
        self.incremental = dict(self.live)

    @precondition(lambda self: self.incremental is not None)
    @rule()
    def restore_incremental(self):
        self.machine.restore_incremental()
        self.live = dict(self.incremental)

    @invariant()
    def memory_matches_model(self):
        memory = self.machine.memory
        for page in range(N_PAGES):
            expected = self.live.get(page, 0)
            actual = memory.read(page * PAGE_SIZE, 1)[0]
            assert actual == expected, (
                "page %d: VM has %d, model has %d" % (page, actual, expected))


SnapshotModel.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
TestSnapshotModel = SnapshotModel.TestCase


@given(st.lists(st.tuples(st.integers(0, N_PAGES - 1),
                          st.integers(1, 255)), min_size=1, max_size=60),
       st.integers(0, 59))
@settings(max_examples=40, deadline=None)
def test_incremental_splits_history_exactly(writes, split_raw):
    """Writes before the incremental snapshot survive its restore;
    writes after it are rolled back."""
    split = split_raw % len(writes)
    machine = _machine()
    machine.capture_root()
    model = {}
    for page, value in writes[:split]:
        machine.memory.write(page * PAGE_SIZE, bytes([value]))
        model[page] = value
    machine.create_incremental()
    for page, value in writes[split:]:
        machine.memory.write(page * PAGE_SIZE, bytes([value]))
    machine.restore_incremental()
    for page in range(N_PAGES):
        assert machine.memory.read(page * PAGE_SIZE, 1)[0] == \
            model.get(page, 0)
    machine.restore_root()
    for page in range(N_PAGES):
        assert machine.memory.read(page * PAGE_SIZE, 1)[0] == 0


def _force_always_immutable(memory):
    """Turn a live GuestMemory into the pre-optimization reference:
    every write immediately reseals its page to immutable ``bytes``,
    exactly what the old always-immutable implementation did."""
    from repro.vm.memory import GuestMemory

    orig = GuestMemory._write_chunk

    def sealing_chunk(page_idx, page_off, data, length):
        orig(memory, page_idx, page_off, data, length)
        memory.seal_page(page_idx)

    memory._write_chunk = sealing_chunk
    return memory


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("write"),
                  st.integers(0, N_PAGES * PAGE_SIZE - 8),
                  st.binary(min_size=1, max_size=8)),
        st.tuples(st.just("write_span"),
                  st.integers(0, N_PAGES - 2),
                  st.binary(min_size=PAGE_SIZE, max_size=PAGE_SIZE + 64)),
        st.tuples(st.just("create")),
        st.tuples(st.just("restore_inc")),
        st.tuples(st.just("restore_root")),
    ),
    min_size=1, max_size=40)


@given(_OPS)
@settings(max_examples=40, deadline=None)
def test_sealing_matches_always_immutable_reference(ops):
    """Snapshot-boundary sealing is invisible: any interleaving of
    writes, create_incremental, restore_incremental and restore_root
    yields byte-identical memory, identical SnapshotStats page counts
    and an identical sim clock vs. the old always-immutable
    implementation."""
    fast = _machine()
    slow = _machine()
    _force_always_immutable(slow.memory)
    fast.capture_root()
    slow.capture_root()

    for op in ops:
        kind = op[0]
        if kind == "write":
            _, addr, data = op
            fast.memory.write(addr, data)
            slow.memory.write(addr, data)
        elif kind == "write_span":
            _, page, data = op
            addr = page * PAGE_SIZE + PAGE_SIZE - 32  # straddles a boundary
            data = data[:fast.memory.size_bytes - addr]  # clamp to memory end
            fast.memory.write(addr, data)
            slow.memory.write(addr, data)
        elif kind == "create":
            assert fast.create_incremental() == slow.create_incremental()
        elif kind == "restore_inc":
            if fast.snapshots.incremental_active:
                assert slow.snapshots.incremental_active
                assert fast.restore_incremental() == slow.restore_incremental()
            else:
                assert not slow.snapshots.incremental_active
        else:
            assert fast.restore_root() == slow.restore_root()

        size = fast.memory.size_bytes
        assert fast.memory.read(0, size) == slow.memory.read(0, size)

    assert fast.snapshots.stats.as_dict() == slow.snapshots.stats.as_dict()
    assert fast.snapshots.private_page_count() == \
        slow.snapshots.private_page_count()
    assert fast.snapshots.diverged_pages() == slow.snapshots.diverged_pages()
    assert fast.clock.now == slow.clock.now


@given(st.integers(1, 6), st.integers(8, N_PAGES))
@settings(max_examples=20, deadline=None)
def test_snapshot_costs_scale_with_dirty_pages(n_small, n_large):
    """The §4.2 cost property: incremental creation cost is a function
    of the diverged page count, not total memory."""
    costs = []
    for n in (n_small, n_large):
        machine = _machine()
        machine.capture_root()
        for page in range(n):
            machine.memory.write(page * PAGE_SIZE, b"x")
        before = machine.clock.now
        machine.create_incremental()
        costs.append(machine.clock.now - before)
    assert costs[1] > costs[0]


# ----------------------------------------------------------------------
# prefix-trace elision == full tracing (PR: pluggable backends)
# ----------------------------------------------------------------------


def _traced_executor():
    from repro.coverage.tracer import EdgeTracer
    from repro.emu.interceptor import Interceptor
    from repro.emu.surface import AttackSurface
    from repro.fuzz.executor import NyxExecutor
    from repro.guestos.kernel import Kernel
    from tests.helpers import EchoServer
    machine = Machine(memory_bytes=16 * 1024 * 1024)
    kernel = Kernel(machine)
    interceptor = Interceptor(kernel, AttackSurface.tcp_server(7))
    kernel.spawn(EchoServer(7))
    kernel.run()
    kernel.flush_to_memory(full=True)
    machine.capture_root()
    tracer = EdgeTracer(traced_fragments=("helpers",))
    return machine, NyxExecutor(machine, kernel, interceptor, tracer)


def _elision_sequence(machine, executor, base, child):
    """One full exercise of every elision path; returns the traces.

    Covers from-root elision against a remembered parent recording
    (whole-run elision when the child equals the parent), suffix
    elision against the capture recording, and the heal/rebuild path
    (which invalidates all recordings mid-sequence).
    """
    traces = []
    r_base = executor.run_full(base)
    executor.remember_trace(1, r_base)
    traces.append(r_base.trace)
    executor.finish_snapshot_cycle()
    traces.append(executor.run_full(child, parent_key=1).trace)
    executor.finish_snapshot_cycle()
    executor.run_full(base)                       # re-arm the snapshot
    traces.append(executor.run_suffix(child).trace)
    machine.snapshots.discard_incremental()       # corrupt -> heal
    traces.append(executor.run_suffix(child).trace)
    executor.finish_snapshot_cycle()
    return traces


@given(payloads=st.lists(st.binary(min_size=1, max_size=6),
                         min_size=2, max_size=4),
       mutated=st.binary(min_size=0, max_size=8))
@settings(max_examples=15, deadline=None)
def test_prefix_elision_equals_full_tracing(payloads, mutated):
    """Elision is invisible: every run's trace is byte-identical to the
    same sequence executed with elision disabled — through from-root
    elision, whole-run elision, suffix elision and heal/rebuild."""
    from repro.fuzz.input import FuzzInput
    from repro.spec.bytecode import Op

    ops = [Op("connection"), Op("packet", (0,), (bytes(payloads[0]),)),
           Op("snapshot")]
    ops.extend(Op("packet", (0,), (bytes(p),)) for p in payloads[1:])
    base = FuzzInput(ops)
    child = base.copy()
    child.with_payload(base.packet_indices()[-1], bytes(mutated))

    machine, executor = _traced_executor()
    elided = _elision_sequence(machine, executor, base, child)
    assert executor.prefix_elisions >= 1
    assert executor.elision_invalidations >= 1

    executor.trace_elision = False
    plain = _elision_sequence(machine, executor, base, child)
    assert elided == plain

    # FaultPlan composition: an armed injector (even at rate 0, which
    # never fires) disarms elision; traces still match the reference.
    from repro.faults import FaultInjector, FaultPlan
    executor.trace_elision = True
    injector = FaultInjector(FaultPlan(seed=0, rate=0.0))
    executor.interceptor.injector = injector
    machine.snapshots.injector = injector
    before = executor.prefix_elisions
    armed = _elision_sequence(machine, executor, base, child)
    assert executor.prefix_elisions == before
    assert armed == plain
