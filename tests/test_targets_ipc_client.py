"""Protocol tests for Firefox IPC (server-side, multi-channel) and the
MySQL client (client-mode fuzzing)."""

import struct

import pytest

from repro.fuzz.campaign import build_campaign
from repro.guestos.errors import CrashKind
from repro.targets.firefox_ipc import (ACTOR_CANVAS, ACTOR_WINDOW,
                                       MSG_ACTOR_CALL, MSG_CREATE_ACTOR,
                                       MSG_DESTROY_ACTOR, MSG_NAVIGATE,
                                       MSG_PING, MSG_SHMEM_MAP,
                                       PROFILE as FFIPC, _msg)
from repro.targets.mysql_client import (PROFILE as MYSQL, _column, _eof,
                                        _mysql_packet, _ok, _result_header,
                                        _row, _server_greeting)

from tests.target_harness import TargetHarness


class TestFirefoxIpc:
    @pytest.fixture()
    def ipc(self):
        return TargetHarness(FFIPC)

    def test_ping_pong(self, ipc):
        responses = ipc.send(_msg(MSG_PING, 0, b""))
        assert responses and b"pong" in responses[0]

    def test_spawns_content_child(self, ipc):
        names = {p.program.name for p in ipc.kernel.processes.values()}
        assert "firefox-content" in names

    def test_actor_lifecycle(self, ipc):
        responses = ipc.send(
            _msg(MSG_CREATE_ACTOR, 0, struct.pack("<H", ACTOR_WINDOW)),
            _msg(MSG_ACTOR_CALL, 16, b"focus"),
            _msg(MSG_DESTROY_ACTOR, 16, b"sync"))
        joined = b"".join(responses)
        assert b"window:1" in joined and b"bye" in joined
        assert ipc.crash() is None

    def test_navigate_empty_url_null_deref(self, ipc):
        ipc.send(_msg(MSG_NAVIGATE, 0, b""))
        report = ipc.crash()
        assert report is not None and report.kind is CrashKind.NULL_DEREF
        assert "navigate" in report.bug_id

    def test_unknown_actor_null_deref(self, ipc):
        ipc.send(_msg(MSG_ACTOR_CALL, 777, b"boom"))
        report = ipc.crash()
        assert report is not None and "unknown-actor" in report.bug_id

    def test_canvas_draw_before_shmem_null_deref(self, ipc):
        ipc.send(_msg(MSG_CREATE_ACTOR, 0, struct.pack("<H", ACTOR_CANVAS)),
                 _msg(MSG_ACTOR_CALL, 16, b"draw rect"))
        report = ipc.crash()
        assert report is not None and "canvas" in report.bug_id

    def test_canvas_with_shmem_is_safe(self, ipc):
        responses = ipc.send(
            _msg(MSG_CREATE_ACTOR, 0, struct.pack("<H", ACTOR_CANVAS)),
            _msg(MSG_SHMEM_MAP, 16, struct.pack("<I", 4096)),
            _msg(MSG_ACTOR_CALL, 16, b"draw rect"))
        assert ipc.crash() is None
        assert b"drawn" in b"".join(responses)

    def test_async_teardown_uaf(self, ipc):
        ipc.send(_msg(MSG_CREATE_ACTOR, 0, struct.pack("<H", ACTOR_WINDOW)),
                 _msg(MSG_DESTROY_ACTOR, 16, b"async"),
                 _msg(MSG_ACTOR_CALL, 16, b"poke"))
        report = ipc.crash()
        assert report is not None
        assert report.kind is CrashKind.ASAN_USE_AFTER_FREE

    def test_sync_teardown_is_safe(self, ipc):
        ipc.send(_msg(MSG_CREATE_ACTOR, 0, struct.pack("<H", ACTOR_WINDOW)),
                 _msg(MSG_DESTROY_ACTOR, 16, b"sync"),
                 _msg(MSG_ACTOR_CALL, 16, b"poke"))
        # Calls on a *fully* destroyed actor id look like unknown-actor
        # null derefs — which is itself one of the planted bugs.
        report = ipc.crash()
        assert report is None or "unknown-actor" in report.bug_id

    def test_oversized_message_dropped(self, ipc):
        evil = struct.pack("<HHI", MSG_PING, 0, 1 << 20) + b"x"
        ipc.send(evil)
        assert ipc.crash() is None


class TestMySqlClient:
    @pytest.fixture()
    def client(self):
        return TargetHarness(MYSQL)

    def test_client_connects_at_boot(self, client):
        # The outgoing connection was claimed by the client-mode agent.
        assert client.interceptor._unbound_client_sids

    def test_handshake_login_query(self, client):
        client.send(_server_greeting(), _ok())
        program = next(p for p in client.kernel.processes.values()).program
        assert program.server_version.startswith(b"8.0.32")
        assert program.queries_sent == 1

    def test_result_set_parsed(self, client):
        client.send(_server_greeting(), _ok(),
                    _result_header(2), _column(b"id"), _column(b"name"),
                    _eof(), _row(b"1", b"alice"), _eof())
        program = next(p for p in client.kernel.processes.values()).program
        assert program.columns == [b"id", b"name"]
        assert program.rows == [[b"1", b"alice"]]

    def test_err_packet_ends_session(self, client):
        client.send(_server_greeting(), _mysql_packet(b"\xff\x15\x04no", 2))
        program = next(p for p in client.kernel.processes.values()).program
        assert program.state == "done"

    def test_column_count_oob_read(self, client):
        """§5.4: more declared columns than definitions -> OOB read."""
        client.send(_server_greeting(), _ok(),
                    _result_header(3), _column(b"only-one"), _eof())
        report = client.crash()
        assert report is not None
        assert report.kind is CrashKind.ASAN_OOB_READ

    def test_snapshot_resets_client_state(self, client):
        client.send(_server_greeting(), _ok())
        client.reset()
        program = next(p for p in client.kernel.processes.values()).program
        assert program.state == "await-handshake"
        assert program.queries_sent == 0

    def test_fuzzing_campaign_reconnects_every_test(self):
        handles = build_campaign(MYSQL, policy="none", seed=9,
                                 time_budget=5.0, max_execs=50)
        stats = handles.fuzzer.run_campaign()
        assert stats.execs == 50
