"""Tests for the static analysis engine (``repro analyze``).

Covers the diagnostics core, the three analyzer families (spec lint,
op-sequence dataflow lint, determinism self-lint), the fix-it pipeline,
the corpus audit, the CLI, and the wiring into trim/persist/queue.
Golden files under ``tests/golden/`` pin the exact rendered output per
rule family so message or severity drift is a reviewed change.
"""

import json
import pathlib
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (analyze_ops, analyze_spec, apply_fixes,
                            eliminate_dead_ops, repair_blob)
from repro.analysis.corpus import audit_corpus
from repro.analysis.diagnostics import Diagnostic, RULES, Report, Severity
from repro.analysis.selflint import analyze_source, analyze_source_tree
from repro.cli import main as cli_main
from repro.fuzz.input import FuzzInput
from repro.fuzz.mutators import MutationEngine
from repro.fuzz.stats import CampaignStats
from repro.sim.rng import DeterministicRandom
from repro.spec.bytecode import (MAGIC, Op, deserialize, serialize, validate)
from repro.spec.nodes import EdgeType, NodeType, Spec, default_network_spec

GOLDEN = pathlib.Path(__file__).parent / "golden"
REPO_SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def raw_encode(spec, ops):
    """Encode ops to flat bytecode WITHOUT validating (test damage)."""
    out = bytearray(MAGIC)
    out += struct.pack("<II", spec.checksum(), len(ops))
    for op in ops:
        if op.is_snapshot_marker():
            out += struct.pack("<H", Spec.SNAPSHOT_NODE_ID)
            continue
        node = spec.node_by_name(op.node)
        out += struct.pack("<H", node.node_id)
        for ref in op.refs:
            out += struct.pack("<H", ref)
        for dtype, value in zip(node.data, op.args):
            out += dtype.pack(value)
    return bytes(out)


def damaged_ops():
    """One sequence hitting NYX010, NYX011, NYX012 and NYX013."""
    return [
        Op("snapshot"),                        # 0: leading marker
        Op("connection"),                      # 1: ok (used by 2, 7)
        Op("packet", (0,), (b"GET /",)),       # 2: ok, surface
        Op("snapshot"),                        # 3: superseded interior
        Op("connection"),                      # 4: dead output
        Op("packet", (9,), (b"bad",)),         # 5: ref out of range
        Op("snapshot"),                        # 6: last interior marker
        Op("packet", (0,), (b"POST /",)),      # 7: ok, last surface
        Op("connection"),                      # 8: unobservable tail
        Op("snapshot"),                        # 9: trailing marker
    ]


def broken_spec():
    """A spec hitting every NYX00x rule."""
    s = Spec("broken")
    phantom = s.edge_type("phantom")
    orphan = s.edge_type("orphan")
    s.node_type("maker", outputs=[orphan])           # NYX002
    s.node_type("ghost", borrows=[phantom])          # NYX001 + NYX003
    s.node_type("snapshot")                          # NYX004 (name)
    s.node_types.append(NodeType(Spec.SNAPSHOT_NODE_ID, "evil"))  # NYX004
    s.node_types.append(NodeType(0, "copycat"))      # NYX004 (dup id)
    s.edge_types.append(EdgeType(0, "clone"))        # NYX004 (dup edge)
    s.node_type("scalars", data=[s.data_u8("count")])  # NYX005
    return s


SELF_LINT_FIXTURE = """\
import random
from os import urandom

import time


def stamp():
    return time.time()


def hosts():
    return [h for h in {"a", "b"}]


def drain(items):
    for item in set(items):
        yield item
"""


def assert_matches_golden(name, text):
    assert text == (GOLDEN / name).read_text()


class TestDiagnostics:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("NYX999", "nope")

    def test_default_severity_from_rules(self):
        assert Diagnostic("NYX013", "x").severity is Severity.ERROR
        assert Diagnostic("NYX010", "x").severity is Severity.WARNING
        assert Diagnostic("NYX005", "x").severity is Severity.INFO

    def test_format_shows_location_and_fixable(self):
        d = Diagnostic("NYX012", "trailing snapshot marker",
                       file="q/id_0.nyx", op_index=3, fixable=True)
        line = d.format()
        assert "NYX012" in line and "q/id_0.nyx" in line
        assert "op 3" in line and "[fixable]" in line
        d.fixed = True
        assert "[fixed]" in d.format()

    def test_exit_code_gates_on_unfixed_errors(self):
        report = Report()
        report.add(Diagnostic("NYX010", "warn"))
        assert report.exit_code() == 0
        err = Diagnostic("NYX013", "bad")
        report.add(err)
        assert report.exit_code() == 1
        err.fixed = True
        assert report.exit_code() == 0

    def test_json_report_shape(self, tmp_path):
        report = Report()
        report.add(Diagnostic("NYX030", "corrupt", file="x.nyx"))
        report.meta["entries_scanned"] = 1
        path = tmp_path / "report.json"
        report.write_json(str(path))
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert data["summary"]["errors"] == 1
        assert data["summary"]["exit_code"] == 1
        assert data["findings"][0]["code"] == "NYX030"
        assert data["findings"][0]["title"] == RULES["NYX030"][0]
        assert data["meta"]["entries_scanned"] == 1


class TestSpecLint:
    def test_default_spec_is_clean(self):
        assert analyze_spec(default_network_spec()) == []

    def test_broken_spec_hits_every_rule(self):
        codes = {d.code for d in analyze_spec(broken_spec())}
        assert codes == {"NYX001", "NYX002", "NYX003", "NYX004", "NYX005"}

    def test_golden(self):
        report = Report(diagnostics=analyze_spec(broken_spec()))
        assert_matches_golden("speclint.txt", report.format_text() + "\n")


class TestOpLint:
    def setup_method(self):
        self.spec = default_network_spec()

    def test_clean_sequence(self):
        ops = [Op("connection"), Op("packet", (0,), (b"hi",)),
               Op("snapshot"), Op("packet", (0,), (b"more",)),
               Op("shutdown", (0,))]
        assert analyze_ops(self.spec, ops) == []

    def test_damaged_sequence_codes(self):
        codes = {d.code for d in analyze_ops(self.spec, damaged_ops())}
        assert codes == {"NYX010", "NYX011", "NYX012", "NYX013"}

    def test_no_surface_write_flagged(self):
        # With no surface write at all, the dead connection is also an
        # unobservable tail op (everything is after the "last" write).
        diags = analyze_ops(self.spec, [Op("connection")])
        codes = sorted(d.code for d in diags)
        assert codes == ["NYX011", "NYX014"]

    def test_double_consume_flagged(self):
        ops = [Op("connection"), Op("packet", (0,), (b"x",)),
               Op("shutdown", (0,)), Op("shutdown", (0,))]
        codes = [d.code for d in analyze_ops(self.spec, ops)]
        assert codes == ["NYX013"]

    def test_golden(self):
        diags = analyze_ops(self.spec, damaged_ops(), file="entry.nyx")
        report = Report(diagnostics=diags)
        assert_matches_golden("oplint.txt", report.format_text() + "\n")


class TestFixes:
    def setup_method(self):
        self.spec = default_network_spec()

    def test_apply_fixes_repairs_damaged_sequence(self):
        result = apply_fixes(self.spec, damaged_ops())
        validate(self.spec, result.ops)
        assert result.changed
        assert result.dropped_invalid == 1    # the bad-ref packet
        assert result.eliminated_dead == 2    # dead + tail connection
        assert result.markers_removed == 3    # leading, superseded, trailing
        payloads = [op.args for op in result.ops if op.node == "packet"]
        assert payloads == [(b"GET /",), (b"POST /",)]
        assert len(result.ops) < len(damaged_ops())

    def test_apply_fixes_is_identity_on_clean_input(self):
        ops = [Op("connection"), Op("packet", (0,), (b"hi",)),
               Op("snapshot"), Op("shutdown", (0,))]
        result = apply_fixes(self.spec, ops)
        assert not result.changed
        assert [(o.node, o.refs, o.args) for o in result.ops] == \
            [(o.node, o.refs, o.args) for o in ops]

    def test_cascade_drop_of_dependent_ops(self):
        # The shutdown refs the bad packet's (nonexistent) output chain:
        # dropping the ill-typed op must cascade to ops referencing
        # values only it would have produced.
        ops = [Op("connection"), Op("packet", (5,), (b"bad",)),
               Op("packet", (0,), (b"good",))]
        result = apply_fixes(self.spec, ops)
        validate(self.spec, result.ops)
        assert [op.args for op in result.ops if op.node == "packet"] == \
            [(b"good",)]

    def test_eliminate_dead_ops_requires_valid_input(self):
        from repro.spec.nodes import SpecError
        with pytest.raises(SpecError):
            eliminate_dead_ops(self.spec, [Op("packet", (0,), (b"x",))])

    def test_repair_blob_handles_structural_damage(self):
        good = raw_encode(self.spec, [Op("connection"),
                                      Op("packet", (0,), (b"payload",))])
        assert repair_blob(self.spec, good[:-3]) is None
        assert repair_blob(self.spec, b"") is None
        other = Spec("other")
        other.node_type("solo")
        assert repair_blob(self.spec, raw_encode(other, [Op("solo")])) is None

    def test_repair_blob_fixes_logical_damage(self):
        blob = raw_encode(self.spec, damaged_ops())
        ops = repair_blob(self.spec, blob)
        validate(self.spec, ops)
        assert [op.args for op in ops if op.node == "packet"] == \
            [(b"GET /",), (b"POST /",)]

    @given(st.lists(st.one_of(
        st.just(Op("connection")),
        st.builds(lambda r, p: Op("packet", (r,), (p,)),
                  st.integers(0, 6), st.binary(max_size=16)),
        st.builds(lambda r: Op("shutdown", (r,)), st.integers(0, 6)),
        st.just(Op("snapshot")),
    ), max_size=12))
    @settings(max_examples=120)
    def test_fixed_output_always_validates(self, ops):
        spec = default_network_spec()
        result = apply_fixes(spec, ops)
        validate(spec, result.ops)          # never raises
        assert len(result.ops) <= len(ops)
        # Surviving payloads are a subsequence of the authored ones.
        before = [op.args[0] for op in ops
                  if op.node == "packet" and len(op.args) == 1]
        after = [op.args[0] for op in result.ops if op.node == "packet"]
        it = iter(before)
        assert all(any(p == q for q in it) for p in after)

    @given(st.lists(st.tuples(st.binary(min_size=1, max_size=16),
                              st.booleans()),
                    min_size=1, max_size=8))
    @settings(max_examples=120)
    def test_fix_preserves_payloads_of_valid_inputs(self, packets):
        # Valid sequence: connection, then packets each optionally
        # preceded by a snapshot marker (never leading/trailing/dup).
        spec = default_network_spec()
        ops = [Op("connection")]
        for payload, marked in packets:
            if marked:
                ops.append(Op("snapshot"))
            ops.append(Op("packet", (0,), (payload,)))
        validate(spec, ops)
        result = apply_fixes(spec, ops)
        validate(spec, result.ops)
        assert result.dropped_invalid == 0
        assert result.eliminated_dead == 0
        assert [op.args[0] for op in result.ops if op.node == "packet"] == \
            [payload for payload, _ in packets]


class TestSelfLint:
    def test_fixture_findings(self):
        diags = analyze_source("fixture.py", SELF_LINT_FIXTURE)
        codes = [d.code for d in diags]
        assert codes == ["NYX021", "NYX022", "NYX020", "NYX023", "NYX023"]

    def test_golden(self):
        diags = analyze_source("fixture.py", SELF_LINT_FIXTURE)
        report = Report(diagnostics=diags)
        assert_matches_golden("selflint.txt", report.format_text() + "\n")

    def test_inline_suppression(self):
        src = "import random  # nyx: allow[NYX021]\n"
        assert analyze_source("x.py", src) == []
        src = "import random  # nyx: allow[NYX020]\n"
        assert [d.code for d in analyze_source("x.py", src)] == ["NYX021"]

    def test_unparseable_module(self):
        diags = analyze_source("x.py", "def broken(:\n")
        assert [d.code for d in diags] == ["NYX024"]

    def test_sim_directory_exempt(self, tmp_path):
        (tmp_path / "sim").mkdir()
        (tmp_path / "sim" / "rng.py").write_text("import random\n")
        (tmp_path / "app.py").write_text("import random\n")
        diags = analyze_source_tree(str(tmp_path))
        assert len(diags) == 1
        assert diags[0].file.endswith("app.py")

    def test_repo_self_lint_is_clean(self):
        # The CI gate: src/repro must stay free of wall-clock/entropy
        # leaks (grandfathered findings carry inline allows).
        diags = analyze_source_tree(str(REPO_SRC))
        assert diags == []


class TestCorpusAudit:
    def _plant(self, tmp_path):
        spec = default_network_spec()
        qdir = tmp_path / "queue"
        qdir.mkdir()
        good = [Op("connection"), Op("packet", (0,), (b"GET /",))]
        (qdir / "id_000000.nyx").write_bytes(serialize(spec, good))
        (qdir / "id_000001.nyx").write_bytes(
            raw_encode(spec, damaged_ops()))
        truncated = raw_encode(spec, good)[:-4]
        (qdir / "id_000002.nyx").write_bytes(truncated)
        other = Spec("other")
        other.node_type("solo")
        (qdir / "id_000003.nyx").write_bytes(raw_encode(other, [Op("solo")]))
        return spec, qdir

    def test_audit_reports_all_families(self, tmp_path):
        spec, _qdir = self._plant(tmp_path)
        report = audit_corpus(str(tmp_path), spec=spec)
        codes = {d.code for d in report.diagnostics}
        assert {"NYX010", "NYX012", "NYX013",
                "NYX030", "NYX031"} <= codes
        assert report.meta["entries_scanned"] == 4
        assert report.exit_code() == 1

    def test_fix_rewrites_repairable_entries(self, tmp_path):
        spec, qdir = self._plant(tmp_path)
        report = audit_corpus(str(tmp_path), spec=spec, fix=True)
        assert report.meta["entries_repaired"] == 1
        # The repaired entry re-validates with fewer ops and its
        # payload bytes intact (the acceptance criterion).
        ops = deserialize(spec, (qdir / "id_000001.nyx").read_bytes())
        assert len(ops) < len(damaged_ops())
        assert [op.args for op in ops if op.node == "packet"] == \
            [(b"GET /",), (b"POST /",)]
        # Structural corruption cannot be fixed; still an error.
        assert report.exit_code() == 1
        # A second audit finds the repaired entry clean.
        again = audit_corpus(str(tmp_path), spec=spec)
        assert not [d for d in again.diagnostics
                    if d.file.endswith("id_000001.nyx")]

    def test_flat_directory_layout(self, tmp_path):
        spec = default_network_spec()
        (tmp_path / "a.nyx").write_bytes(
            serialize(spec, [Op("connection"),
                             Op("packet", (0,), (b"x",))]))
        report = audit_corpus(str(tmp_path), spec=spec)
        assert report.meta["entries_scanned"] == 1
        assert report.exit_code() == 0


class TestCli:
    def test_bare_analyze_is_clean(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_SRC.parents[1])
        assert cli_main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_corpus_audit_exit_codes(self, tmp_path, capsys):
        spec = default_network_spec()
        qdir = tmp_path / "queue"
        qdir.mkdir()
        (qdir / "id_0.nyx").write_bytes(raw_encode(spec, damaged_ops()))
        assert cli_main(["analyze", "--corpus", str(tmp_path)]) == 1
        assert cli_main(["analyze", "--corpus", str(tmp_path),
                         "--fix"]) == 0
        assert cli_main(["analyze", "--corpus", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_json_report_written(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        qdir = tmp_path / "queue"
        qdir.mkdir()
        spec = default_network_spec()
        (qdir / "id_0.nyx").write_bytes(
            serialize(spec, [Op("connection"),
                             Op("packet", (0,), (b"ok",))]))
        assert cli_main(["analyze", "--corpus", str(tmp_path),
                         "--json", str(report_path)]) == 0
        data = json.loads(report_path.read_text())
        assert data["summary"]["exit_code"] == 0
        assert data["meta"]["entries_scanned"] == 1
        capsys.readouterr()


class TestWiring:
    """The analyzer's hooks in persist, queue and the mutator."""

    def test_load_corpus_repairs_damaged_entries(self, tmp_path):
        import warnings as warnings_mod
        from repro.fuzz.persist import load_corpus
        spec = default_network_spec()
        qdir = tmp_path / "queue"
        qdir.mkdir()
        (qdir / "id_000000.nyx").write_bytes(
            raw_encode(spec, damaged_ops()))
        (qdir / "id_000001.nyx").write_bytes(b"garbage")
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("ignore")
            seeds = load_corpus(str(tmp_path), spec=spec)
            assert len(seeds) == 1
            assert seeds[0].origin == "repaired"
            validate(spec, seeds[0].ops)
            # repair=False restores the old skip behaviour.
            assert load_corpus(str(tmp_path), spec=spec, repair=False) == []

    def test_import_foreign_repairs_damaged_entries(self):
        from repro.fuzz.queue import Corpus, QueueEntry
        spec = default_network_spec()
        corpus = Corpus(DeterministicRandom(1))
        damaged = QueueEntry(0, FuzzInput(damaged_ops()), checksum=11)
        hopeless = QueueEntry(1, FuzzInput([Op("packet", (7,), (b"x",))]),
                              checksum=22)
        adopted = corpus.import_foreign([damaged, hopeless], spec=spec)
        assert len(adopted) == 1
        assert adopted[0].input.origin == "import+repaired"
        validate(spec, adopted[0].input.ops)

    def test_import_foreign_keeps_valid_entries_untouched(self):
        from repro.fuzz.queue import Corpus, QueueEntry
        spec = default_network_spec()
        corpus = Corpus(DeterministicRandom(1))
        ops = [Op("connection"), Op("packet", (0,), (b"fine",))]
        entry = QueueEntry(0, FuzzInput(ops), checksum=5)
        adopted = corpus.import_foreign([entry], spec=spec)
        assert adopted[0].input.origin == "import"
        assert len(adopted[0].input.ops) == 2

    def test_mutated_children_always_validate(self):
        spec = default_network_spec()
        base = FuzzInput([Op("connection"),
                          Op("packet", (0,), (b"USER anonymous\r\n",)),
                          Op("snapshot"),
                          Op("packet", (0,), (b"PASS x\r\n",)),
                          Op("packet", (0,), (b"NOOP\r\n",))])
        donor = FuzzInput([Op("connection"),
                           Op("packet", (0,), (b"SYST\r\n",))])
        engine = MutationEngine(DeterministicRandom(7),
                                dictionary=[b"QUIT\r\n"])
        for _ in range(400):
            child = engine.mutate(base, from_index=0, splice_donor=donor)
            validate(spec, child.ops)

    def test_mutation_preserves_prefix_before_snapshot(self):
        spec = default_network_spec()
        base = FuzzInput([Op("connection"),
                          Op("packet", (0,), (b"one",)),
                          Op("snapshot"),
                          Op("packet", (0,), (b"two",)),
                          Op("packet", (0,), (b"three",))])
        engine = MutationEngine(DeterministicRandom(3))
        for _ in range(200):
            child = engine.mutate(base, from_index=3)
            assert [(o.node, o.args) for o in child.ops[:3]] == \
                [(o.node, o.args) for o in base.ops[:3]]
            validate(spec, child.ops)

    def test_trim_counters_roll_up(self):
        a, b = CampaignStats(), CampaignStats()
        a.trim_ops_static, a.trim_ops_exec = 2, 1
        b.trim_ops_static, b.trim_ops_exec = 3, 4
        merged = CampaignStats.merge([a, b])
        assert merged.trim_ops_static == 5
        assert merged.trim_ops_exec == 5
        assert merged.as_dict()["trim_ops_static"] == 5


class TestTrimStaticPrePass:
    @pytest.fixture()
    def executor(self):
        from repro.coverage.tracer import EdgeTracer
        from repro.emu.interceptor import Interceptor
        from repro.emu.surface import AttackSurface
        from repro.fuzz.executor import NyxExecutor
        from repro.guestos.kernel import Kernel
        from repro.targets.lightftp import LightFtpServer, PORT
        from repro.vm.machine import Machine
        machine = Machine(memory_bytes=32 * 1024 * 1024)
        kernel = Kernel(machine)
        interceptor = Interceptor(kernel, AttackSurface.tcp_server(PORT))
        kernel.spawn(LightFtpServer())
        kernel.run(max_rounds=256)
        kernel.flush_to_memory(full=True)
        machine.capture_root()
        return NyxExecutor(machine, kernel, interceptor, EdgeTracer())

    def test_static_reduce_counts_into_stats(self, executor):
        from repro.fuzz.trim import _signature, trim_input
        # Two interior markers: the superseded one is statically
        # removable without touching the target at all.
        bloated = FuzzInput([Op("connection"),
                             Op("packet", (0,), (b"USER anonymous\r\n",)),
                             Op("snapshot"),
                             Op("packet", (0,), (b"PASS x\r\n",)),
                             Op("snapshot"),
                             Op("packet", (0,), (b"NOOP\r\n",))])
        stats = CampaignStats()
        trimmed, _execs = trim_input(executor, bloated,
                                     shrink_payloads=False, stats=stats)
        assert stats.trim_ops_static >= 1
        validate(default_network_spec(), trimmed.ops)
        sig_before = _signature(executor.run_full(bloated).trace)
        sig_after = _signature(executor.run_full(trimmed).trace)
        assert sig_before == sig_after

    def test_static_reduce_leaves_foreign_inputs_alone(self):
        from repro.fuzz.trim import static_reduce
        foreign = FuzzInput([Op("alien", (), ())])
        reduced, removed = static_reduce(default_network_spec(), foreign)
        assert removed == 0
        assert reduced is foreign
