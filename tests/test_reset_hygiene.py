"""Tests for the snapshot-hygiene analyzer (NYX04x + NYX05x).

Covers the static reset-safety lint (mutable-state registry, rule
classification, suppressions, fix-it stubs), the runtime reset
sanitizer (structural digests, cycle/depth handling, diffing), the
wiring into the campaign loop and the CLI, and regression tests for
the two genuine reset leaks the analyzer found in the tree (stale
interceptor surface tables, phantom kernel outbox bytes).
"""

import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.diagnostics import Diagnostic, Report, Severity
from repro.analysis.resetlint import (allowed_reset_attrs,
                                      analyze_reset_source,
                                      analyze_reset_tree, fixit_stubs,
                                      tree_fixit_stubs)
from repro.analysis.sanitizer import (ResetSanitizer, diff_digests,
                                      structural_digest)
from repro.cli import main as cli_main
from repro.fuzz.campaign import boot_target, build_campaign
from repro.fuzz.stats import CampaignStats
from repro.sim.rng import DeterministicRandom
from repro.targets import PROFILES

GOLDEN = pathlib.Path(__file__).parent / "golden"
REPO_SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def assert_matches_golden(name, text):
    assert text == (GOLDEN / name).read_text()


RESET_LINT_FIXTURE = '''\
"""Fixture exercising every NYX04x rule."""

SEEN_IDS = {}

pending = []  # nyx: allow[NYX041] -- deliberate cross-reset registry

BOUNDS = [8, 16]


def remember(key):
    SEEN_IDS[key] = True


class Device:
    backlog = []

    def __init__(self):
        self.hits = 0
        self.queue = []

    def on_packet(self, data):
        self.hits += 1
        self.queue.append(data)

    def reset_for_test(self):
        self.queue = []


class Orphan:
    def __init__(self):
        self.count = 0

    def poke(self):
        self.count += 1


class Hooked:
    def __init__(self):
        self.seen = []

    def record(self, item):
        self.seen.append(item)

    def on_root_restore(self):
        pass


class Latch:
    def __init__(self):
        self.armed = False  # nyx: allow[reset] -- one-way latch

    def trip(self):
        self.armed = True


class Serialized:  # nyx: state[memory]
    def __init__(self):
        self.inbox = []

    def deliver(self, data):
        self.inbox.append(data)
'''

#: A deliberately leaky device, used to prove BOTH prongs catch the
#: same defect: the static lint flags ``hits`` (NYX040) and the
#: runtime sanitizer names the exact ``devices.evil.hits`` path.
LEAKY_DEVICE_SRC = '''\
class EvilDevice:
    """Test-only device that keeps per-exec state across resets."""

    def __init__(self):
        self.hits = 0

    def on_exec(self):
        self.hits += 1
'''

#: A lint-clean class: every mutated attribute is restored by
#: ``reset_for_test``, so its post-reset digest must be a fixpoint.
CLEAN_SESSION_SRC = '''\
class Session:
    def __init__(self):
        self.count = 0
        self.buf = []
        self.table = {}

    def on_packet(self, data):
        self.count += 1
        self.buf.append(data)
        self.table[len(self.buf)] = data

    def reset_for_test(self):
        self.count = 0
        self.buf = []
        self.table = {}
'''


def _exec_fixture(src, name):
    namespace = {}
    exec(compile(src, "<fixture>", "exec"), namespace)
    return namespace[name]


class TestResetLint:
    def test_fixture_findings(self):
        diags = analyze_reset_source("fixture.py", RESET_LINT_FIXTURE)
        codes = [d.code for d in diags]
        assert codes == ["NYX041", "NYX042", "NYX043", "NYX040", "NYX044"]

    def test_golden(self):
        diags = analyze_reset_source("fixture.py", RESET_LINT_FIXTURE)
        report = Report(diagnostics=diags)
        assert_matches_golden("resetlint.txt", report.format_text() + "\n")

    def test_messages_name_attribute_and_reset_method(self):
        diags = analyze_reset_source("fixture.py", RESET_LINT_FIXTURE)
        by_code = {d.code: d for d in diags}
        assert "Device.hits" in by_code["NYX043"].message
        assert "reset_for_test" in by_code["NYX043"].message
        assert "Orphan.count" in by_code["NYX040"].message
        assert "Hooked.seen" in by_code["NYX044"].message
        assert "on_root_restore" in by_code["NYX044"].message
        assert by_code["NYX044"].severity is Severity.WARNING

    def test_anchor_is_the_defining_line(self):
        diags = analyze_reset_source("fixture.py", RESET_LINT_FIXTURE)
        by_code = {d.code: d for d in diags}
        lines = RESET_LINT_FIXTURE.splitlines()
        assert lines[by_code["NYX043"].line - 1].strip() == "self.hits = 0"
        assert lines[by_code["NYX040"].line - 1].strip() == "self.count = 0"

    def test_allcaps_global_mutated_via_subscript_is_caught(self):
        src = "_SEEN = {}\n\ndef f(key):\n    _SEEN[key] = True\n"
        diags = analyze_reset_source("x.py", src)
        assert [d.code for d in diags] == ["NYX041"]
        assert "mutated at line 4" in diags[0].message

    def test_allcaps_unmutated_global_is_a_constant(self):
        assert analyze_reset_source("x.py", "TABLE = [1, 2]\n") == []

    def test_local_rebinding_shadows_the_global(self):
        src = ("cache = {}  # nyx: allow[reset]\n"
               "def f():\n    cache = {}\n    cache[1] = 2\n")
        assert analyze_reset_source("x.py", src) == []

    def test_attribute_hop_not_attributed_to_holder(self):
        # self.kernel.count += 1 mutates the kernel, not self.kernel.
        src = ("class Api:\n"
               "    def __init__(self, kernel):\n"
               "        self.kernel = kernel\n"
               "    def poke(self):\n"
               "        self.kernel.count += 1\n")
        assert analyze_reset_source("x.py", src) == []

    def test_subscript_chain_is_attributed_to_holder(self):
        src = ("class Grid:\n"
               "    def __init__(self):\n"
               "        self.rows = [[0]]\n"
               "    def poke(self):\n"
               "        self.rows[0][0] = 1\n")
        assert [d.code for d in analyze_reset_source("x.py", src)] \
            == ["NYX040"]

    def test_class_line_allow_suppresses_whole_class(self):
        src = ("class Book:  # nyx: allow[reset]\n"
               "    def __init__(self):\n"
               "        self.n = 0\n"
               "    def poke(self):\n"
               "        self.n += 1\n")
        assert analyze_reset_source("x.py", src) == []

    def test_single_code_allow_leaves_other_rules(self):
        src = ("class Book:\n"
               "    shared = []\n"
               "    def __init__(self):\n"
               "        self.n = 0  # nyx: allow[NYX040]\n"
               "    def poke(self):\n"
               "        self.n += 1\n")
        assert [d.code for d in analyze_reset_source("x.py", src)] \
            == ["NYX042"]

    def test_memory_marker_covers_instances_not_class_containers(self):
        src = ("class Box:  # nyx: state[memory]\n"
               "    shared = []\n"
               "    def __init__(self):\n"
               "        self.n = 0\n"
               "    def poke(self):\n"
               "        self.n += 1\n")
        assert [d.code for d in analyze_reset_source("x.py", src)] \
            == ["NYX042"]

    def test_parse_error_is_nyx045(self):
        diags = analyze_reset_source("broken.py", "def f(:\n")
        assert [d.code for d in diags] == ["NYX045"]
        assert diags[0].severity is Severity.ERROR

    def test_leaky_device_fixture_caught_statically(self):
        diags = analyze_reset_source("evil.py", LEAKY_DEVICE_SRC)
        assert [d.code for d in diags] == ["NYX040"]
        assert "EvilDevice.hits" in diags[0].message

    def test_repo_reset_lint_is_clean(self):
        assert analyze_reset_tree(str(REPO_SRC)) == []

    def test_fixit_stubs(self):
        stubs = fixit_stubs("fixture.py", RESET_LINT_FIXTURE)
        assert sorted(stubs) == ["Device", "Hooked", "Orphan"]
        assert "# add to Device.reset_for_test():" in stubs["Device"]
        assert "self.hits = 0" in stubs["Device"]
        assert "def reset_for_test(self)" in stubs["Orphan"]
        assert "self.count = 0" in stubs["Orphan"]
        assert "self.seen = []" in stubs["Hooked"]

    def test_tree_fixit_stubs_keyed_by_path(self, tmp_path):
        (tmp_path / "mod.py").write_text(LEAKY_DEVICE_SRC)
        stubs = tree_fixit_stubs(str(tmp_path))
        assert list(stubs) == ["%s::EvilDevice" % (tmp_path / "mod.py")]

    def test_allowed_registry_collects_suppressions(self, tmp_path):
        (tmp_path / "mod.py").write_text(RESET_LINT_FIXTURE)
        allowed = allowed_reset_attrs(str(tmp_path))
        assert ("Latch", "armed") in allowed
        # Memory-marked classes are NOT in the registry: the sanitizer
        # must still walk them (the snapshot restores their state).
        assert ("Serialized", "*") not in allowed

    def test_repo_registry_covers_known_cross_reset_state(self):
        allowed = allowed_reset_attrs(str(REPO_SRC))
        assert ("Interceptor", "saw_first_read") in allowed
        assert ("Kernel", "crash_reports") in allowed
        assert ("FaultInjector", "*") in allowed


class TestStructuralDigest:
    def test_deterministic_and_path_named(self):
        dev = _exec_fixture(LEAKY_DEVICE_SRC, "EvilDevice")()
        d1, t1 = structural_digest({"dev": dev})
        d2, t2 = structural_digest({"dev": dev})
        assert d1 == d2 and not t1 and not t2
        assert d1["dev.hits"] == "0"

    def test_diff_reports_exact_path(self):
        dev = _exec_fixture(LEAKY_DEVICE_SRC, "EvilDevice")()
        before, _ = structural_digest({"dev": dev})
        dev.on_exec()
        after, _ = structural_digest({"dev": dev})
        diags = diff_digests(before, after)
        assert [d.code for d in diags] == ["NYX050"]
        assert "dev.hits" in diags[0].message
        assert "0 -> 1" in diags[0].message

    def test_appeared_and_disappeared_paths_are_nyx051(self):
        dev = _exec_fixture(LEAKY_DEVICE_SRC, "EvilDevice")()
        before, _ = structural_digest({"dev": dev})
        del dev.hits
        dev.ghost = 7
        after, _ = structural_digest({"dev": dev})
        codes = {d.code for d in diff_digests(before, after)}
        assert codes == {"NYX051"}
        messages = " ".join(d.message
                            for d in diff_digests(before, after))
        assert "dev.ghost" in messages and "dev.hits" in messages

    def test_self_referential_fd_table_digests_as_cycle(self):
        class FdTable:
            def __init__(self):
                self.entries = {}

        table = FdTable()
        table.entries[0] = table          # fd 0 points back at itself
        digest, truncated = structural_digest({"fds": table})
        assert digest["fds.entries[0]"] == "<cycle>"
        assert not truncated
        # Stable across runs despite the cycle.
        assert structural_digest({"fds": table})[0] == digest

    def test_shared_object_is_not_a_cycle(self):
        # The same object reachable twice (not on its own path) is
        # walked both times — only true back-edges digest as <cycle>.
        shared = {"k": 1}
        digest, _ = structural_digest({"root": {"a": shared, "b": shared}})
        assert digest["root['a']['k']"] == "1"
        assert digest["root['b']['k']"] == "1"

    def test_depth_cap_truncates_and_flags(self):
        deep = current = []
        for _ in range(30):
            nxt = []
            current.append(nxt)
            current = nxt
        digest, truncated = structural_digest({"deep": deep}, max_depth=5)
        assert truncated
        assert "<depth>" in digest.values()

    def test_unordered_leaves_are_stable(self):
        digest, _ = structural_digest({"s": {3, 1, 2},
                                       "f": frozenset({"b", "a"})})
        assert digest["s"] == "[1, 2, 3]"
        assert digest["f"] == "['a', 'b']"

    def test_long_leaves_are_fingerprinted(self):
        digest, _ = structural_digest({"blob": b"x" * 4096})
        assert digest["blob"].startswith("sha1:")

    def test_allowed_attrs_are_skipped(self):
        dev = _exec_fixture(LEAKY_DEVICE_SRC, "EvilDevice")()
        digest, _ = structural_digest({"dev": dev},
                                      allowed=[("EvilDevice", "hits")])
        assert "dev.hits" not in digest

    def test_sanitizer_requires_baseline(self):
        sanitizer = ResetSanitizer({"x": object()}, allowed=())
        with pytest.raises(RuntimeError):
            sanitizer.check()

    def test_depth_cap_reported_once_as_nyx052(self):
        deep = current = []
        for _ in range(30):
            nxt = []
            current.append(nxt)
            current = nxt
        sanitizer = ResetSanitizer({"deep": deep}, allowed=(), max_depth=5)
        sanitizer.capture_baseline()
        first = sanitizer.check()
        assert [d.code for d in first] == ["NYX052"]
        assert sanitizer.check() == []   # flagged once, not per check


class TestDigestStabilityProperty:
    def test_session_fixture_is_lint_clean(self):
        assert analyze_reset_source("session.py", CLEAN_SESSION_SRC) == []

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_lint_clean_class_has_fixpoint_digest(self, seed):
        """50 randomized exec/reset cycles never move the digest."""
        session = _exec_fixture(CLEAN_SESSION_SRC, "Session")()
        rng = DeterministicRandom(seed)
        sanitizer = ResetSanitizer({"session": session}, allowed=())
        session.reset_for_test()
        sanitizer.capture_baseline()
        for _ in range(50):
            for _ in range(rng.randrange(8)):
                session.on_packet(bytes([rng.randrange(256)]))
            session.reset_for_test()
            assert sanitizer.check() == []


class TestLeakRegressions:
    """The two genuine leaks the analyzer found, pinned forever."""

    def test_reset_prunes_stale_surface_sids(self):
        machine, kernel, interceptor = boot_target(PROFILES["lighttpd"])
        boot_listeners = dict(interceptor.listener_sids)
        assert boot_listeners  # lighttpd binds its surface at boot
        interceptor.listener_sids[999999] = ("0.0.0.0", 8080)
        interceptor.dgram_sids[999998] = ("0.0.0.0", 6969)
        interceptor.reset_for_test()
        assert interceptor.listener_sids == boot_listeners
        assert 999998 not in interceptor.dgram_sids

    def test_same_input_same_coverage_despite_stale_listener(self):
        # A surface-matching bind mid-exec leaves a listener sid whose
        # socket the snapshot reset rolls back; before the fix the
        # stale entry skewed open_connection's round-robin so the same
        # input produced different coverage on the next run.
        handles = build_campaign(PROFILES["lighttpd"], policy="none",
                                 seed=0, time_budget=1e9, max_execs=100)
        seed_input = handles.profile.seeds()[0]
        first = handles.executor.run_full(seed_input)
        handles.interceptor.listener_sids[999999] = ("0.0.0.0", 8080)
        second = handles.executor.run_full(seed_input)
        assert first.trace == second.trace
        assert 999999 not in handles.interceptor.listener_sids

    def test_suffix_runs_prune_stale_surface_too(self):
        handles = build_campaign(PROFILES["lighttpd"], policy="none",
                                 seed=0, time_budget=1e9, max_execs=100)
        seed_input = handles.profile.seeds()[0]
        handles.executor.run_full(seed_input, snapshot_after_packet=0)
        assert handles.executor.suffix_resume_index is not None
        baseline = handles.executor.run_suffix(seed_input)
        handles.interceptor.listener_sids[999999] = ("0.0.0.0", 8080)
        again = handles.executor.run_suffix(seed_input)
        assert 999999 not in handles.interceptor.listener_sids
        assert baseline.trace == again.trace

    def test_restore_clears_phantom_outbox_bytes(self):
        # Bytes the guest sent during a rolled-back execution must not
        # survive the restore as phantom responses.
        machine, kernel, interceptor = boot_target(PROFILES["lighttpd"])
        kernel._outbox[12345] = [b"stale response"]
        kernel.flush_to_memory()
        machine.restore_root()
        assert kernel._outbox == {}


class TestCampaignIntegration:
    def test_sanitized_campaign_reports_zero_leaks(self):
        handles = build_campaign(PROFILES["lighttpd"], policy="balanced",
                                 seed=1, time_budget=1e9, max_execs=120,
                                 sanitize_every=40)
        stats = handles.fuzzer.run_campaign()
        assert stats.sanitizer_checks >= 2   # periodic + final
        assert stats.sanitizer_leaks == 0
        assert handles.fuzzer.sanitizer_findings == []

    def test_injected_leak_caught_with_exact_path(self):
        handles = build_campaign(PROFILES["lighttpd"], policy="none",
                                 seed=0, time_budget=1e9, max_execs=4,
                                 sanitize_every=1000)
        evil = _exec_fixture(LEAKY_DEVICE_SRC, "EvilDevice")()
        handles.machine.devices.evil = evil
        handles.fuzzer.begin_campaign()      # captures the baseline
        evil.on_exec()                       # the leak: survives resets
        handles.fuzzer._sanitize_check()
        stats = handles.fuzzer.stats
        assert stats.sanitizer_checks == 1
        assert stats.sanitizer_leaks == 1
        finding = handles.fuzzer.sanitizer_findings[0]
        assert finding.code == "NYX050"
        assert "devices.evil.hits" in finding.message

    def test_sanitizer_disabled_by_default(self):
        handles = build_campaign(PROFILES["lighttpd"], policy="none",
                                 seed=0, time_budget=1e9, max_execs=3)
        stats = handles.fuzzer.run_campaign()
        assert handles.fuzzer.sanitizer is None
        assert stats.sanitizer_checks == 0

    def test_stats_roundtrip_and_merge(self):
        a = CampaignStats(sanitizer_checks=3, sanitizer_leaks=1)
        b = CampaignStats(sanitizer_checks=2, sanitizer_leaks=0)
        merged = CampaignStats.merge([a, b])
        assert merged.sanitizer_checks == 5
        assert merged.sanitizer_leaks == 1
        assert a.as_dict()["sanitizer_checks"] == 3
        assert a.as_dict()["sanitizer_leaks"] == 1


class TestCli:
    def test_analyze_reset_flags_fixture_tree(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(RESET_LINT_FIXTURE)
        code = cli_main(["analyze", "--reset", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "NYX041" in out and "NYX043" in out

    def test_analyze_reset_fix_prints_stubs(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(LEAKY_DEVICE_SRC)
        code = cli_main(["analyze", "--reset", str(tmp_path), "--fix"])
        out = capsys.readouterr().out
        assert code == 1
        assert "fix-it for" in out and "self.hits = 0" in out

    def test_analyze_reset_repo_is_clean(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = cli_main(["analyze", "--reset", str(REPO_SRC),
                         "--json", str(report_path)])
        assert code == 0
        assert report_path.exists()

    def test_fuzz_sanitize_resets_flag(self, capsys):
        code = cli_main(["fuzz", "lighttpd", "--time", "1000000",
                         "--execs", "60", "--seed", "1", "--policy",
                         "none", "--sanitize-resets", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "reset sanitizer:" in out
        assert "0 leaks" in out
