#!/usr/bin/env python3
"""Quickstart: snapshot-fuzz a network server in ~20 lines.

Boots the lightftp target inside a simulated VM, hooks its port with
the network-emulation agent, takes the root snapshot right before the
first input byte, and fuzzes with the aggressive incremental-snapshot
placement policy.

Run:  python examples/quickstart.py
"""

from repro import PROFILES, build_campaign


def main() -> None:
    profile = PROFILES["lightftp"]
    print("Target: %s (%s protocol) — %s" % (profile.name, profile.protocol,
                                             profile.notes))

    handles = build_campaign(
        profile,
        policy="aggressive",   # none | balanced | aggressive (§3.4)
        seed=1,
        time_budget=60.0,      # simulated seconds
        max_execs=2000,        # host-side cap
    )
    stats = handles.fuzzer.run_campaign()

    print()
    print(stats.summary())
    print("corpus entries:       %d" % len(handles.fuzzer.corpus))
    print("suffix (incremental): %d of %d execs"
          % (stats.suffix_execs, stats.execs))
    snap = handles.machine.stats()
    print("snapshot activity:    %d root restores, %d incremental "
          "creates, %d incremental restores"
          % (snap["root_restores"], snap["incremental_creates"],
             snap["incremental_restores"]))
    if handles.fuzzer.crashes.unique_bugs:
        print("unique bugs found:    %s" % handles.fuzzer.crashes.unique_bugs)
    else:
        print("no crashes (lightftp plants none — see Table 1)")


if __name__ == "__main__":
    main()
