"""openssl (s_server): TLS record and handshake parsing.

Models the TLS 1.2 server-side handshake surface ProFuzzBench fuzzes:
record layer framing, ClientHello parsing (versions, cipher suites,
extensions), key exchange and the session machine.  Crypto is replaced
by CPU charges — the paper's AFLNet manages only 0.3 execs/s here, the
slowest row of Table 3, largely because of handshake cost; our cost
model mirrors that with heavy per-handshake charges.  No bug planted
(no openssl crash in Table 1).
"""

from __future__ import annotations

import struct

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, MessageServer, TargetProfile

PORT = 4433

REC_CCS = 20
REC_ALERT = 21
REC_HANDSHAKE = 22
REC_APPDATA = 23

HS_CLIENT_HELLO = 1
HS_SERVER_HELLO = 2
HS_CERTIFICATE = 11
HS_SERVER_HELLO_DONE = 14
HS_CLIENT_KEY_EXCHANGE = 16
HS_FINISHED = 20

SUPPORTED_SUITES = (0x002F, 0x0035, 0xC02F, 0xC030, 0x009C, 0x1301)

KNOWN_EXTENSIONS = {0: "sni", 10: "groups", 11: "ec_point_formats",
                    13: "sig_algs", 16: "alpn", 23: "ems", 35: "ticket",
                    43: "versions", 51: "key_share"}


class OpensslServer(MessageServer):
    name = "openssl"
    port = PORT
    startup_cost = 0.20  # key/cert loading, RAND seeding
    parse_cost = 8e-9

    def __init__(self) -> None:
        super().__init__()
        self.handshakes = 0
        self.session_tickets = {}

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        conn.buffer += data
        while len(conn.buffer) >= 5:
            rec_type = conn.buffer[0]
            version = struct.unpack_from(">H", conn.buffer, 1)[0]
            (length,) = struct.unpack_from(">H", conn.buffer, 3)
            if length > 16384 + 256:
                self._alert(api, conn, 22)  # record_overflow
                conn.buffer = b""
                return
            if len(conn.buffer) < 5 + length:
                return
            record = conn.buffer[5:5 + length]
            conn.buffer = conn.buffer[5 + length:]
            if version >> 8 != 3:
                self._alert(api, conn, 70)  # protocol_version
                continue
            self._record(api, conn, rec_type, record)

    def _record(self, api, conn: ConnCtx, rec_type: int, record: bytes) -> None:
        if rec_type == REC_HANDSHAKE:
            offset = 0
            while offset + 4 <= len(record):
                hs_type = record[offset]
                hs_len = int.from_bytes(record[offset + 1:offset + 4], "big")
                body = record[offset + 4:offset + 4 + hs_len]
                if len(body) < hs_len:
                    self._alert(api, conn, 50)  # decode_error
                    return
                offset += 4 + hs_len
                self._handshake(api, conn, hs_type, body)
        elif rec_type == REC_CCS:
            if conn.state == "kex-done":
                conn.state = "ccs"
            else:
                self._alert(api, conn, 10)  # unexpected_message
        elif rec_type == REC_ALERT:
            conn.state = "closed"
        elif rec_type == REC_APPDATA:
            if conn.state == "established":
                api.cpu(len(record) * 5e-9)  # AES
                self.reply(api, conn, _record(REC_APPDATA, b"HTTP/1.0 200 ok\r\n"))
            else:
                self._alert(api, conn, 10)

    def _handshake(self, api, conn: ConnCtx, hs_type: int, body: bytes) -> None:
        if hs_type == HS_CLIENT_HELLO:
            self._client_hello(api, conn, body)
        elif hs_type == HS_CLIENT_KEY_EXCHANGE:
            if conn.state != "hello-done":
                self._alert(api, conn, 10)
                return
            api.cpu(8e-5)  # RSA decrypt / ECDHE
            conn.state = "kex-done"
        elif hs_type == HS_FINISHED:
            if conn.state != "ccs":
                self._alert(api, conn, 10)
                return
            api.cpu(1e-5)  # PRF verify
            self.handshakes += 1
            self.reply(api, conn, _record(REC_CCS, b"\x01"))
            self.reply(api, conn, _record(
                REC_HANDSHAKE, bytes([HS_FINISHED]) + b"\x00\x00\x0c" + bytes(12)))
            conn.state = "established"
        else:
            self._alert(api, conn, 10)

    def _client_hello(self, api, conn: ConnCtx, body: bytes) -> None:
        if len(body) < 34:
            self._alert(api, conn, 50)
            return
        offset = 34  # version + random
        # session id
        sid_len = body[offset] if offset < len(body) else 255
        offset += 1 + sid_len
        if offset + 2 > len(body):
            self._alert(api, conn, 50)
            return
        (suites_len,) = struct.unpack_from(">H", body, offset)
        offset += 2
        suites = []
        for i in range(0, min(suites_len, len(body) - offset) - 1, 2):
            suites.append(struct.unpack_from(">H", body, offset + i)[0])
        offset += suites_len
        chosen = next((s for s in suites if s in SUPPORTED_SUITES), None)
        if chosen is None:
            self._alert(api, conn, 40)  # handshake_failure
            return
        conn.vars["suite"] = chosen
        # compression methods
        if offset < len(body):
            comp_len = body[offset]
            offset += 1 + comp_len
        # extensions
        extensions = {}
        if offset + 2 <= len(body):
            (ext_total,) = struct.unpack_from(">H", body, offset)
            offset += 2
            end = min(len(body), offset + ext_total)
            while offset + 4 <= end:
                ext_type, ext_len = struct.unpack_from(">HH", body, offset)
                extensions[ext_type] = body[offset + 4:offset + 4 + ext_len]
                offset += 4 + ext_len
        if 0 in extensions:  # SNI: u16 list len, u8 type, u16 name len
            ext = extensions[0]
            if len(ext) >= 5:
                (name_len,) = struct.unpack_from(">H", ext, 3)
                conn.vars["sni"] = ext[5:5 + min(name_len, 64)]
        api.cpu(5e-5)  # key share generation
        conn.state = "hello-done"
        self.reply(api, conn, _record(
            REC_HANDSHAKE,
            bytes([HS_SERVER_HELLO]) + b"\x00\x00\x26" + b"\x03\x03"
            + bytes(32) + b"\x00" + struct.pack(">H", chosen) + b"\x00"))
        self.reply(api, conn, _record(
            REC_HANDSHAKE, bytes([HS_CERTIFICATE]) + b"\x00\x00\x04" + bytes(4)))
        self.reply(api, conn, _record(
            REC_HANDSHAKE, bytes([HS_SERVER_HELLO_DONE]) + b"\x00\x00\x00"))

    def _alert(self, api, conn: ConnCtx, code: int) -> None:
        self.reply(api, conn, _record(REC_ALERT, bytes([2, code])))
        conn.state = "closed"


def _record(rec_type: int, payload: bytes) -> bytes:
    return bytes([rec_type]) + b"\x03\x03" + struct.pack(">H", len(payload)) \
        + payload


def _client_hello_bytes(suites=(0xC02F, 0x002F), sni: bytes = b"test.local") -> bytes:
    suite_bytes = b"".join(struct.pack(">H", s) for s in suites)
    sni_ext = struct.pack(">HH", 0, len(sni) + 5) \
        + struct.pack(">H", len(sni) + 3) + b"\x00" \
        + struct.pack(">H", len(sni)) + sni
    body = (b"\x03\x03" + bytes(32) + b"\x00"
            + struct.pack(">H", len(suite_bytes)) + suite_bytes
            + b"\x01\x00"
            + struct.pack(">H", len(sni_ext)) + sni_ext)
    hs = bytes([HS_CLIENT_HELLO]) + len(body).to_bytes(3, "big") + body
    return _record(REC_HANDSHAKE, hs)


DICTIONARY = [b"\x16\x03\x03", b"\x03\x03", struct.pack(">H", 0xC02F),
              struct.pack(">H", 0x1301), bytes([HS_CLIENT_HELLO]),
              bytes([HS_CLIENT_KEY_EXCHANGE]), bytes([HS_FINISHED]),
              b"\x14\x03\x03\x00\x01\x01", b"test.local"]


def make_seeds():
    spec = default_network_spec()
    ccs = _record(REC_CCS, b"\x01")
    kex = _record(REC_HANDSHAKE, bytes([HS_CLIENT_KEY_EXCHANGE])
                  + b"\x00\x00\x20" + bytes(32))
    fin = _record(REC_HANDSHAKE, bytes([HS_FINISHED]) + b"\x00\x00\x0c"
                  + bytes(12))
    seeds = []
    for packets in (
        [_client_hello_bytes()],
        [_client_hello_bytes(), kex, ccs, fin],
        [_client_hello_bytes(suites=(0x1301, 0x009C), sni=b"alt.local"),
         kex, ccs, fin,
         _record(REC_APPDATA, b"GET / HTTP/1.0\r\n\r\n")],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for packet in packets:
            builder.packet(con, packet)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="openssl",
    protocol="tls",
    make_program=OpensslServer,
    surface_factory=lambda: AttackSurface.tcp_server(PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.20,
    libpreeny_compatible=True,
    planted_bugs=(),
    notes="Crypto replaced by CPU charges; slowest AFLNet row of Table 3.",
)
