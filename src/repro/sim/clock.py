"""A deterministic simulated clock.

Every component of the reproduction charges time to a single
:class:`SimClock` instance owned by the VM.  This replaces the paper's
wall-clock measurements: fuzzing campaigns advance simulated time
according to the cost model (see :mod:`repro.sim.costs`), which makes
throughput experiments deterministic and laptop-friendly while keeping
the *structure* of the costs (startup vs. reset vs. per-packet work)
identical to the paper's testbed.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated clock measured in seconds.

    The clock only moves forward.  Components call :meth:`charge` with a
    non-negative duration; observers read :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start in the past: %r" % start)
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since campaign start."""
        return self._now

    def charge(self, seconds: float) -> None:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("cannot charge negative time: %r" % seconds)
        self._now += seconds

    def reset(self) -> None:
        """Rewind to zero.  Only used between independent campaigns."""
        self._now = 0.0

    def restore(self, now: float) -> None:
        """Set the clock to an absolute instant (campaign resume).

        State restoration, not time travel: a resumed campaign rebuilds
        its VM (charging boot time afresh) and then snaps the clock to
        the checkpointed instant, erasing the rebuild charges so the
        simulated timeline continues exactly where the killed run left
        off.  Only the durability layer (:mod:`repro.fuzz.journal`)
        calls this.
        """
        if now < 0:
            raise ValueError("cannot restore to a negative time: %r" % now)
        self._now = float(now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SimClock(now=%.6f)" % self._now
