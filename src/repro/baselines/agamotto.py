"""Agamotto-style incremental snapshots (Song et al., USENIX Sec '20).

The Figure 6 comparison point.  Agamotto's design differs from
Nyx-Net's in exactly the ways §5.3 calls out, all modelled here:

* **bitmap walks**: finding dirty pages scans the whole per-page
  bitmap, O(total pages), instead of popping Nyx's dirty stack;
* **snapshot trees**: snapshots are deltas chained to their parent;
  restoring walks the chain root→leaf applying deltas;
* **LRU eviction**: once stored deltas exceed a 1 GiB budget, least-
  recently-used snapshots are evicted (and their children re-parented
  deltas merged), "causing it to slow down";
* **QEMU-style device serialization** for every capture/restore
  (``device_reset_slow``), not Nyx's direct field reset.

Costs are charged on the same simulated clock, so head-to-head
create/restore timings against :class:`~repro.vm.snapshot.SnapshotManager`
are meaningful — and the *host* wall-clock shapes match too, because
the bitmap scan and delta-chain walks are real work here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.vm.machine import Machine

#: Agamotto's snapshot storage budget before LRU eviction kicks in.
STORAGE_BUDGET_BYTES = 1 << 30
PAGE_BYTES = 4096


@dataclass
class _TreeSnapshot:
    """One node in the snapshot tree: a delta against its parent."""

    snap_id: int
    parent: Optional[int]
    delta: Dict[int, bytes]
    device_blob: bytes
    lru_tick: int = 0

    @property
    def stored_bytes(self) -> int:
        return len(self.delta) * PAGE_BYTES + len(self.device_blob)


class AgamottoSnapshotter:
    """Tree-structured incremental snapshots over a machine."""

    def __init__(self, machine: Machine,
                 storage_budget: int = STORAGE_BUDGET_BYTES) -> None:
        self.machine = machine
        self.storage_budget = storage_budget
        self._snapshots: Dict[int, _TreeSnapshot] = {}
        self._next_id = 1
        self._tick = 0
        self.evictions = 0
        # The root snapshot: a full copy (id 0, never evicted).
        memory = machine.memory
        self._root_pages = memory.pages_snapshot()
        self._snapshots[0] = _TreeSnapshot(
            0, None, {}, machine.devices.capture_slow())
        machine.clock.charge(
            machine.costs.snapshot_fixed
            + memory.num_pages * machine.costs.root_page_copy
            + machine.costs.device_reset_slow)
        memory.clear_dirty_log()
        #: Which snapshot the current VM state derives from.
        self.current: int = 0
        #: Pages known to differ from the root image in the current VM
        #: state (deltas applied by restores plus committed snapshots).
        self._applied: set = set()

    # ------------------------------------------------------------------

    def create_snapshot(self) -> int:
        """Checkpoint the current state as a child of ``current``."""
        machine = self.machine
        memory = machine.memory
        # Agamotto walks the WHOLE dirty bitmap (the cost asymmetry).
        dirty = memory.scan_bitmap()
        machine.clock.charge(
            machine.costs.snapshot_fixed
            + memory.num_pages * machine.costs.bitmap_walk_entry
            + len(dirty) * machine.costs.page_copy
            + machine.costs.device_reset_slow)
        delta = {idx: memory.page(idx) for idx in dirty}
        self._applied.update(delta)
        snap = _TreeSnapshot(self._next_id, self.current, delta,
                             machine.devices.capture_slow(),
                             lru_tick=self._bump())
        self._snapshots[snap.snap_id] = snap
        self._next_id += 1
        self.current = snap.snap_id
        self._evict_if_needed()
        return snap.snap_id

    def restore(self, snap_id: int) -> int:
        """Restore the VM to a snapshot; returns pages written."""
        machine = self.machine
        memory = machine.memory
        target = self._snapshots.get(snap_id)
        if target is None:
            raise KeyError("snapshot %d was evicted or never existed" % snap_id)
        target.lru_tick = self._bump()
        # Discard current dirty state (bitmap walk again).
        dirty_now = memory.scan_bitmap()
        machine.clock.charge(memory.num_pages * machine.costs.bitmap_walk_entry)
        # Compose the page image by walking the chain root -> target.
        chain = self._chain_to(snap_id)
        composed: Dict[int, bytes] = {}
        for node in chain:
            composed.update(node.delta)
        # Pages dirtied since, pages previously applied, and every page
        # the target chain touches must all be written back.
        to_write = set(dirty_now) | self._applied | set(composed)
        for idx in to_write:
            memory.set_page(idx, composed.get(idx, self._root_pages[idx]),
                            log=False)
        self._applied = set(composed)
        machine.devices.restore_slow(target.device_blob)
        machine.clock.charge(
            machine.costs.snapshot_fixed
            + len(to_write) * machine.costs.page_copy
            + machine.costs.device_reset_slow)
        self.current = snap_id
        return len(to_write)

    # ------------------------------------------------------------------

    def _chain_to(self, snap_id: int) -> List[_TreeSnapshot]:
        chain: List[_TreeSnapshot] = []
        cursor: Optional[int] = snap_id
        while cursor is not None:
            node = self._snapshots[cursor]
            chain.append(node)
            cursor = node.parent
        chain.reverse()
        return chain

    def stored_bytes(self) -> int:
        return sum(s.stored_bytes for s in self._snapshots.values()
                   if s.snap_id != 0)

    def _bump(self) -> int:
        self._tick += 1
        return self._tick

    def _evict_if_needed(self) -> None:
        """LRU-evict snapshots past the storage budget.

        Children of an evicted node inherit its delta (merged), which
        is the work that "causes it to slow down" once the budget is
        reached — charged per merged page.
        """
        machine = self.machine
        while self.stored_bytes() > self.storage_budget:
            victims = [s for s in self._snapshots.values()
                       if s.snap_id not in (0, self.current)]
            if not victims:
                return
            victim = min(victims, key=lambda s: s.lru_tick)
            children = [s for s in self._snapshots.values()
                        if s.parent == victim.snap_id]
            merged_pages = 0
            for child in children:
                merged = dict(victim.delta)
                merged.update(child.delta)
                merged_pages += len(victim.delta)
                child.delta = merged
                child.parent = victim.parent
            del self._snapshots[victim.snap_id]
            self.evictions += 1
            machine.clock.charge(
                machine.costs.snapshot_fixed
                + merged_pages * machine.costs.page_copy)

    def __len__(self) -> int:
        return len(self._snapshots)
